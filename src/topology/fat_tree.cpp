#include "topology/fat_tree.hpp"

#include <string>

namespace ftsched {

namespace {

/// pow with overflow detection; returns false if the result exceeds 64 bits.
bool checked_pow(std::uint64_t base, std::uint32_t exp, std::uint64_t& out) {
  std::uint64_t result = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && result > UINT64_MAX / base) return false;
    result *= base;
  }
  out = result;
  return true;
}

}  // namespace

Status FatTreeParams::validate() const {
  if (levels < 1) return Status::error("FT(l,m,w): levels must be >= 1");
  if (levels > kMaxTreeLevels) {
    return Status::error("FT(l,m,w): levels exceeds kMaxTreeLevels (" +
                         std::to_string(kMaxTreeLevels) + ")");
  }
  if (child_arity < 2) {
    return Status::error("FT(l,m,w): child arity m must be >= 2");
  }
  if (parent_arity < 1) {
    return Status::error("FT(l,m,w): parent arity w must be >= 1");
  }
  std::uint64_t nodes = 0;
  if (!checked_pow(child_arity, levels, nodes)) {
    return Status::error("FT(l,m,w): node count m^l overflows 64 bits");
  }
  // Largest per-level switch count is max(m,w)^(l-1); cable count adds one
  // more factor of w.
  std::uint64_t worst = 0;
  const std::uint64_t big = child_arity > parent_arity ? child_arity
                                                       : parent_arity;
  if (!checked_pow(big, levels, worst)) {
    return Status::error("FT(l,m,w): switch/cable counts overflow 64 bits");
  }
  return Status();
}

FatTree::FatTree(const FatTreeParams& params) : params_(params) {
  const std::uint32_t l = params.levels;
  const std::uint64_t m = params.child_arity;
  const std::uint64_t w = params.parent_arity;

  node_count_ = 1;
  for (std::uint32_t i = 0; i < l; ++i) node_count_ *= m;

  // switches_at(h) = m^(l-1-h) * w^h
  for (std::uint32_t h = 0; h < l; ++h) {
    std::uint64_t count = 1;
    for (std::uint32_t i = 0; i < l - 1 - h; ++i) count *= m;
    for (std::uint32_t i = 0; i < h; ++i) count *= w;
    switches_per_level_.push_back(count);
  }

  // Label system of level h: digits 0..h-1 radix w, digits h..l-2 radix m.
  for (std::uint32_t h = 0; h < l; ++h) {
    DigitVec radices;
    for (std::uint32_t i = 0; i + 1 < l; ++i) {
      radices.push_back(i < h ? params.parent_arity : params.child_arity);
    }
    label_systems_.push_back(MixedRadix(radices));
    FT_ASSERT(label_systems_[h].cardinality() == switches_per_level_[h]);
  }
}

Result<FatTree> FatTree::create(const FatTreeParams& params) {
  Status status = params.validate();
  if (!status.ok()) return status;
  return FatTree(params);
}

FatTree FatTree::symmetric(std::uint32_t levels, std::uint32_t arity) {
  auto result = create(FatTreeParams::symmetric(levels, arity));
  FT_REQUIRE(result.ok());
  return std::move(result).value();
}

std::uint64_t FatTree::switches_at(std::uint32_t level) const {
  FT_REQUIRE(level < params_.levels);
  return switches_per_level_[level];
}

std::uint64_t FatTree::total_switches() const {
  std::uint64_t total = 0;
  for (std::uint32_t h = 0; h < params_.levels; ++h) {
    total += switches_per_level_[h];
  }
  return total;
}

std::uint64_t FatTree::cables_at(std::uint32_t level) const {
  FT_REQUIRE(level + 1 < params_.levels);
  return switches_per_level_[level] * params_.parent_arity;
}

const MixedRadix& FatTree::label_system(std::uint32_t level) const {
  FT_REQUIRE(level < params_.levels);
  return label_systems_[level];
}

SwitchId FatTree::leaf_switch(NodeId node) const {
  FT_REQUIRE(node < node_count_);
  return SwitchId{0, node / params_.child_arity};
}

std::uint32_t FatTree::leaf_port(NodeId node) const {
  FT_REQUIRE(node < node_count_);
  return static_cast<std::uint32_t>(node % params_.child_arity);
}

NodeId FatTree::node_at(std::uint64_t leaf_switch_index,
                        std::uint32_t port) const {
  FT_REQUIRE(leaf_switch_index < switches_per_level_[0]);
  FT_REQUIRE(port < params_.child_arity);
  return leaf_switch_index * params_.child_arity + port;
}

std::uint64_t FatTree::ascend(std::uint32_t level, std::uint64_t index,
                              std::uint32_t port) const {
  FT_REQUIRE(level + 1 < params_.levels);
  FT_REQUIRE(port < params_.parent_arity);
  const MixedRadix& from = label_systems_[level];
  const MixedRadix& to = label_systems_[level + 1];
  FT_REQUIRE(index < from.cardinality());

  const DigitVec digits = from.decompose(index);
  DigitVec next;
  next.push_back(port);                                 // new digit 0 = P_h
  for (std::uint32_t i = 0; i < level; ++i) {
    next.push_back(digits[i]);                          // ports shift up
  }
  for (std::size_t i = level + 1; i < digits.size(); ++i) {
    next.push_back(digits[i]);                          // source digits stay
  }
  // Old digit `level` (the consumed source digit s_h) is dropped.
  return to.compose(next);
}

SwitchId FatTree::up_neighbor(const SwitchId& sw, std::uint32_t port) const {
  return SwitchId{sw.level + 1, ascend(sw.level, sw.index, port)};
}

FatTree::DownHop FatTree::down_neighbor(const SwitchId& sw,
                                        std::uint32_t down_port) const {
  FT_REQUIRE(sw.level >= 1);
  FT_REQUIRE(sw.level < params_.levels);
  FT_REQUIRE(down_port < params_.child_arity);
  const std::uint32_t child_level = sw.level - 1;
  const MixedRadix& from = label_systems_[sw.level];
  const MixedRadix& to = label_systems_[child_level];
  FT_REQUIRE(sw.index < from.cardinality());

  const DigitVec digits = from.decompose(sw.index);
  DigitVec child;
  for (std::uint32_t i = 1; i <= child_level; ++i) {
    child.push_back(digits[i]);                 // ports shift back down
  }
  child.push_back(down_port);                   // reinsert source digit s_h
  for (std::size_t i = child_level + 1; i < digits.size(); ++i) {
    child.push_back(digits[i]);
  }
  return DownHop{SwitchId{child_level, to.compose(child)},
                 digits[0]};  // cable uses the child's up-port = P_h
}

std::uint32_t FatTree::parent_down_port(const SwitchId& sw) const {
  FT_REQUIRE(sw.level + 1 < params_.levels);
  const MixedRadix& system = label_systems_[sw.level];
  FT_REQUIRE(sw.index < system.cardinality());
  return system.decompose(sw.index)[sw.level];
}

std::uint32_t FatTree::common_ancestor_level(std::uint64_t leaf_a,
                                             std::uint64_t leaf_b) const {
  const MixedRadix& leaves = label_systems_[0];
  FT_REQUIRE(leaf_a < leaves.cardinality());
  FT_REQUIRE(leaf_b < leaves.cardinality());
  if (leaf_a == leaf_b) return 0;
  const DigitVec a = leaves.decompose(leaf_a);
  const DigitVec b = leaves.decompose(leaf_b);
  std::uint32_t highest_diff = 0;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) highest_diff = i;
  }
  return highest_diff + 1;
}

std::uint64_t FatTree::side_switch(std::uint64_t leaf, std::uint32_t level,
                                   const DigitVec& ports) const {
  FT_REQUIRE(level < params_.levels);
  FT_REQUIRE(ports.size() >= level);
  const MixedRadix& leaves = label_systems_[0];
  FT_REQUIRE(leaf < leaves.cardinality());
  const DigitVec source = leaves.decompose(leaf);

  // δ_h (LSB first) = P_{h-1}, …, P_0, d_h, …, d_{l-2}.
  DigitVec digits;
  for (std::uint32_t i = 0; i < level; ++i) {
    digits.push_back(ports[level - 1 - i]);
  }
  for (std::size_t i = level; i < source.size(); ++i) {
    digits.push_back(source[i]);
  }
  return label_systems_[level].compose(digits);
}

}  // namespace ftsched
