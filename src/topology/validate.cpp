#include "topology/validate.hpp"

#include <map>

#include "util/rng.hpp"

namespace ftsched {

namespace {

Status check_updown_inverse(const FatTree& tree, const SwitchId& sw,
                            std::uint32_t port) {
  const SwitchId parent = tree.up_neighbor(sw, port);
  if (parent.level != sw.level + 1) {
    return Status::error("up_neighbor level mismatch at " + to_string(sw));
  }
  if (parent.index >= tree.switches_at(parent.level)) {
    return Status::error("up_neighbor index out of range at " + to_string(sw));
  }
  const std::uint32_t back_port = tree.parent_down_port(sw);
  const FatTree::DownHop hop = tree.down_neighbor(parent, back_port);
  if (hop.child != sw || hop.child_up_port != port) {
    return Status::error("descend(ascend(" + to_string(sw) + ", port " +
                         std::to_string(port) + ")) does not return; got " +
                         to_string(hop.child) + " up-port " +
                         std::to_string(hop.child_up_port));
  }
  return Status();
}

Status check_meeting_point(const FatTree& tree, std::uint64_t leaf_a,
                           std::uint64_t leaf_b, Xoshiro256ss& rng) {
  const std::uint32_t H = tree.common_ancestor_level(leaf_a, leaf_b);
  if (H != tree.common_ancestor_level(leaf_b, leaf_a)) {
    return Status::error("common_ancestor_level is not symmetric");
  }
  if (H >= tree.levels()) {
    return Status::error("common_ancestor_level exceeds tree height");
  }
  // Random port string; both sides must coincide at level H (Theorem 2) and,
  // when H > 0, must still differ at level H-1 (H is minimal).
  DigitVec ports;
  for (std::uint32_t i = 0; i < H; ++i) {
    ports.push_back(static_cast<std::uint32_t>(
        rng.below(tree.parent_arity())));
  }
  if (tree.side_switch(leaf_a, H, ports) != tree.side_switch(leaf_b, H, ports)) {
    return Status::error("leaves " + std::to_string(leaf_a) + "," +
                         std::to_string(leaf_b) +
                         " do not meet at their ancestor level " +
                         std::to_string(H));
  }
  if (H > 0 && tree.side_switch(leaf_a, H - 1, ports) ==
                   tree.side_switch(leaf_b, H - 1, ports)) {
    return Status::error("ancestor level " + std::to_string(H) +
                         " is not minimal for leaves " +
                         std::to_string(leaf_a) + "," + std::to_string(leaf_b));
  }
  return Status();
}

}  // namespace

Status validate_structure(const FatTree& tree, const ValidateOptions& options) {
  const std::uint32_t l = tree.levels();
  const std::uint64_t m = tree.child_arity();
  const std::uint64_t w = tree.parent_arity();

  // Per-level cable balance: the w up-cables of level h must be exactly the
  // m down-cables of level h+1.
  for (std::uint32_t h = 0; h + 1 < l; ++h) {
    if (tree.switches_at(h) * w != tree.switches_at(h + 1) * m) {
      return Status::error("cable count imbalance between levels " +
                           std::to_string(h) + " and " + std::to_string(h + 1));
    }
  }

  Xoshiro256ss rng(options.seed);
  const bool exhaustive = tree.total_switches() <= options.exhaustive_limit;

  // Ascend/descend inverse, and exactly-one-cable-per-pair.
  for (std::uint32_t h = 0; h + 1 < l; ++h) {
    const std::uint64_t count = tree.switches_at(h);
    const std::uint64_t probes = exhaustive ? count : options.samples;
    for (std::uint64_t p = 0; p < probes; ++p) {
      const std::uint64_t idx = exhaustive ? p : rng.below(count);
      const SwitchId sw{h, idx};
      std::map<std::uint64_t, std::uint32_t> parents_seen;
      for (std::uint32_t port = 0; port < w; ++port) {
        Status s = check_updown_inverse(tree, sw, port);
        if (!s.ok()) return s;
        const SwitchId parent = tree.up_neighbor(sw, port);
        auto [it, inserted] = parents_seen.emplace(parent.index, port);
        if (!inserted) {
          return Status::error(to_string(sw) + " reaches " + to_string(parent) +
                               " through ports " + std::to_string(it->second) +
                               " and " + std::to_string(port) +
                               " (duplicate cable)");
        }
      }
    }
  }

  // Down-side fan-out: every parent's m down-ports lead to m distinct
  // children.
  for (std::uint32_t h = 1; h < l; ++h) {
    const std::uint64_t count = tree.switches_at(h);
    const std::uint64_t probes = exhaustive ? count : options.samples;
    for (std::uint64_t p = 0; p < probes; ++p) {
      const std::uint64_t idx = exhaustive ? p : rng.below(count);
      const SwitchId sw{h, idx};
      std::map<std::uint64_t, std::uint32_t> children_seen;
      for (std::uint32_t port = 0; port < m; ++port) {
        const FatTree::DownHop hop =
            tree.down_neighbor(sw, static_cast<std::uint32_t>(port));
        auto [it, inserted] = children_seen.emplace(hop.child.index, port);
        if (!inserted) {
          return Status::error(to_string(sw) + " down-ports " +
                               std::to_string(it->second) + " and " +
                               std::to_string(port) +
                               " reach the same child");
        }
      }
    }
  }

  // Meeting-point property over leaf pairs.
  const std::uint64_t leaves = tree.switches_at(0);
  if (exhaustive && leaves <= 512) {
    for (std::uint64_t a = 0; a < leaves; ++a) {
      for (std::uint64_t b = 0; b < leaves; ++b) {
        Status s = check_meeting_point(tree, a, b, rng);
        if (!s.ok()) return s;
      }
    }
  } else {
    for (std::uint64_t i = 0; i < options.samples; ++i) {
      Status s = check_meeting_point(tree, rng.below(leaves),
                                     rng.below(leaves), rng);
      if (!s.ok()) return s;
    }
  }

  return Status();
}

}  // namespace ftsched
