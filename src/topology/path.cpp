#include "topology/path.hpp"

namespace ftsched {

PathExpansion expand_path(const FatTree& tree, const Path& path) {
  FT_REQUIRE(check_path_legal(tree, path).ok());
  const std::uint64_t src_leaf = tree.leaf_switch(path.src).index;
  const std::uint64_t dst_leaf = tree.leaf_switch(path.dst).index;
  const std::uint32_t H = path.ancestor_level;

  PathExpansion out;
  // Upward side: σ_0 … σ_H with Ulink(h, σ_h, P_h).
  for (std::uint32_t h = 0; h <= H; ++h) {
    const std::uint64_t sigma = tree.side_switch(src_leaf, h, path.ports);
    out.switches.push_back(SwitchId{h, sigma});
    if (h < H) {
      out.channels.push_back(
          ChannelId{CableId{h, sigma, path.ports[h]}, Direction::kUp});
    }
  }
  // Downward side: δ_{H-1} … δ_0 with Dlink(h, δ_h, P_h).
  for (std::uint32_t h = H; h-- > 0;) {
    const std::uint64_t delta = tree.side_switch(dst_leaf, h, path.ports);
    out.switches.push_back(SwitchId{h, delta});
    out.channels.push_back(
        ChannelId{CableId{h, delta, path.ports[h]}, Direction::kDown});
  }
  return out;
}

Status check_path_legal(const FatTree& tree, const Path& path) {
  if (path.src >= tree.node_count() || path.dst >= tree.node_count()) {
    return Status::error("path endpoints out of range for this tree");
  }
  const std::uint64_t src_leaf = tree.leaf_switch(path.src).index;
  const std::uint64_t dst_leaf = tree.leaf_switch(path.dst).index;
  const std::uint32_t true_h = tree.common_ancestor_level(src_leaf, dst_leaf);
  if (path.ancestor_level != true_h) {
    return Status::error("path ancestor_level " +
                         std::to_string(path.ancestor_level) +
                         " differs from the true common-ancestor level " +
                         std::to_string(true_h));
  }
  if (path.ports.size() != true_h) {
    return Status::error("path must carry exactly H = " +
                         std::to_string(true_h) + " port digits, got " +
                         std::to_string(path.ports.size()));
  }
  for (std::size_t i = 0; i < path.ports.size(); ++i) {
    if (path.ports[i] >= tree.parent_arity()) {
      return Status::error("port P_" + std::to_string(i) + " = " +
                           std::to_string(path.ports[i]) +
                           " exceeds parent arity");
    }
  }
  // Theorem 2: with identical ports both sides must reach the same level-H
  // switch. side_switch() computes each side independently; equality here is
  // what makes the downward path exist at all.
  const std::uint64_t sigma_h = tree.side_switch(src_leaf, true_h, path.ports);
  const std::uint64_t delta_h = tree.side_switch(dst_leaf, true_h, path.ports);
  if (sigma_h != delta_h) {
    return Status::error("up and down sides do not meet at level " +
                         std::to_string(true_h) + " (σ_H=" +
                         std::to_string(sigma_h) + ", δ_H=" +
                         std::to_string(delta_h) + ")");
  }
  return Status();
}

bool path_crosses_cable(const FatTree& tree, const Path& path,
                        const CableId& cable) {
  if (cable.level >= path.ancestor_level) return false;
  if (path.ports[cable.level] != cable.port) return false;
  const std::uint64_t src_leaf = tree.leaf_switch(path.src).index;
  const std::uint64_t dst_leaf = tree.leaf_switch(path.dst).index;
  return tree.side_switch(src_leaf, cable.level, path.ports) ==
             cable.lower_index ||
         tree.side_switch(dst_leaf, cable.level, path.ports) ==
             cable.lower_index;
}

std::string to_string(const Path& path) {
  std::string out = "node " + std::to_string(path.src) + " -> node " +
                    std::to_string(path.dst) + " via P=(";
  for (std::size_t i = 0; i < path.ports.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(path.ports[i]);
  }
  out += ")";
  return out;
}

}  // namespace ftsched
