// Identifier types for fat-tree entities.
//
// Naming follows the paper: switches are SW(h, τ) with level h and label τ;
// Ulink(h, τ, i) / Dlink(h, τ, i) are the upward and downward channels of the
// bidirectional cable attached to upper port i of SW(h, τ). Both channels of
// one cable therefore share a CableId keyed by the *lower* endpoint.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ftsched {

/// Processing element (leaf node) index in [0, node_count).
using NodeId = std::uint64_t;

/// Switch SW(level, index); index ∈ [0, switches_at(level)).
struct SwitchId {
  std::uint32_t level = 0;
  std::uint64_t index = 0;

  friend auto operator<=>(const SwitchId&, const SwitchId&) = default;
};

/// A bidirectional cable between SW(level, lower_index) upper port `port`
/// and its level+1 parent. `level` is the LOWER endpoint's level.
struct CableId {
  std::uint32_t level = 0;
  std::uint64_t lower_index = 0;
  std::uint32_t port = 0;

  friend auto operator<=>(const CableId&, const CableId&) = default;
};

/// Direction of travel over a cable.
enum class Direction : std::uint8_t { kUp, kDown };

/// One directed channel: the paper's Ulink(h, τ, i) (kUp) or
/// Dlink(h, τ, i) (kDown).
struct ChannelId {
  CableId cable;
  Direction direction = Direction::kUp;

  friend auto operator<=>(const ChannelId&, const ChannelId&) = default;
};

std::string to_string(const SwitchId& sw);
std::string to_string(const CableId& cable);
std::string to_string(const ChannelId& channel);

}  // namespace ftsched
