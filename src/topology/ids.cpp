#include "topology/ids.hpp"

namespace ftsched {

std::string to_string(const SwitchId& sw) {
  return "SW(" + std::to_string(sw.level) + "," + std::to_string(sw.index) +
         ")";
}

std::string to_string(const CableId& cable) {
  return "Cable(" + std::to_string(cable.level) + "," +
         std::to_string(cable.lower_index) + "," + std::to_string(cable.port) +
         ")";
}

std::string to_string(const ChannelId& channel) {
  const char* kind = channel.direction == Direction::kUp ? "Ulink" : "Dlink";
  return std::string(kind) + "(" + std::to_string(channel.cable.level) + "," +
         std::to_string(channel.cable.lower_index) + "," +
         std::to_string(channel.cable.port) + ")";
}

}  // namespace ftsched
