// PacketSim — cycle-based packet (store-and-forward) network simulation.
//
// The paper positions circuit scheduling against the packet-switched
// status quo ("the scheduling approaches for fat-tree networks are
// developed for store and forward and wormhole routing", §1). This model
// provides that backdrop so the repository can QUANTIFY the trade: an
// input-queued fat-tree fabric moving single-flit packets with no
// reservation at all,
//   * one FIFO per switch input port (capacity `queue_capacity`),
//   * per-output round-robin arbitration among the input ports whose HEAD
//     packet wants that output (head-of-line blocking is modeled),
//   * one packet per output per cycle, one hop per cycle, credit check on
//     the downstream FIFO,
//   * up-ports chosen adaptively (most downstream credit, round-robin tie
//     break) or statically (d-mod-k digits); the descent is forced by the
//     destination digits as in any fat tree,
//   * Bernoulli injection at rate λ per PE per cycle with an unbounded
//     per-PE source backlog (latency includes source queueing).
// Sweeping λ yields the classic latency/offered-load curve; the
// pkt_latency bench runs it for both routing modes.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/link_telemetry.hpp"
#include "obs/metrics.hpp"
#include "topology/fat_tree.hpp"
#include "util/rng.hpp"

namespace ftsched {

enum class PacketRouting : std::uint8_t {
  kAdaptive,  ///< per-hop: up-port with most free downstream slots
  kStatic,    ///< d-mod-k: up-port = destination node digit of the level
};

struct PacketSimOptions {
  PacketRouting routing = PacketRouting::kAdaptive;
  std::uint32_t queue_capacity = 4;   ///< slots (flits) per switch input FIFO
  double injection_rate = 0.1;        ///< λ, messages per PE per cycle
  /// Flits per message. 1 = single-flit packets (store-and-forward cells);
  /// > 1 = wormhole switching — the head flit routes, body flits follow,
  /// and every channel on the path stays locked to the message until the
  /// tail passes, which is exactly the blocking behaviour the paper's
  /// adaptive-routing references ([7,8]) manage.
  std::uint32_t flits_per_packet = 1;
  std::uint64_t warmup_cycles = 1000;
  std::uint64_t measure_cycles = 4000;
  /// Destination draw: uniform random over other PEs (true) or a fixed
  /// random permutation partner (false).
  bool uniform_destinations = true;
  std::uint64_t seed = 0x9acce7ULL;
  /// Optional metrics sink: mirrors every occupancy sample (normalized
  /// fabric fill per measure cycle) into the `simnet.queue.occupancy`
  /// histogram (20 bins over [0, 1)). The registry accumulates across
  /// run() calls; the report's avg_queue_occupancy stays per-run. Must
  /// outlive the simulation.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional fabric telemetry, sampled once per measure cycle (t = cycle):
  /// every switch input FIFO is one channel on the up series, busy = FIFO
  /// non-empty (the down series is unused in packet mode — a packet fabric
  /// has no directed channel reservations to distinguish). Shape: per tree
  /// level, (switches, input ports). Must outlive run().
  obs::LinkTelemetry* telemetry = nullptr;
};

struct PacketSimReport {
  std::uint64_t offered = 0;    ///< messages generated in the measure window
  std::uint64_t delivered = 0;  ///< of those, how many arrived (incl. drain)
  double avg_latency = 0.0;     ///< cycles, injection to tail ejection
  double max_latency = 0.0;
  /// Messages (any) delivered per PE per cycle DURING the measure window —
  /// the sustained rate; caps at fabric capacity under saturation.
  double throughput = 0.0;
  double avg_queue_occupancy = 0.0;  ///< mean fill of switch input FIFOs
};

class PacketSim {
 public:
  /// The tree must outlive the simulation. kStatic requires w >= m.
  PacketSim(const FatTree& tree, PacketSimOptions options = {});

  PacketSimReport run();

 private:
  const FatTree& tree_;
  PacketSimOptions options_;
};

}  // namespace ftsched
