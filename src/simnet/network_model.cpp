#include "simnet/network_model.hpp"

namespace ftsched {

NetworkModel::NetworkModel(const FatTree& tree) : tree_(tree) {
  switches_.resize(tree.levels());
  for (std::uint32_t h = 0; h < tree.levels(); ++h) {
    const std::uint64_t count = tree.switches_at(h);
    switches_[h].reserve(count);
    // Top-level switches have no up ports; intermediate ones have w.
    const std::uint32_t ups =
        h + 1 < tree.levels() ? tree.parent_arity() : 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      switches_[h].emplace_back(SwitchId{h, i}, tree.child_arity(), ups);
    }
  }
}

SwitchNode& NetworkModel::at(const SwitchId& sw) {
  FT_REQUIRE(sw.level < switches_.size());
  FT_REQUIRE(sw.index < switches_[sw.level].size());
  return switches_[sw.level][sw.index];
}

const SwitchNode& NetworkModel::at(const SwitchId& sw) const {
  FT_REQUIRE(sw.level < switches_.size());
  FT_REQUIRE(sw.index < switches_[sw.level].size());
  return switches_[sw.level][sw.index];
}

void NetworkModel::clear() {
  for (auto& level : switches_) {
    for (auto& sw : level) sw.clear();
  }
}

std::uint64_t NetworkModel::total_connections() const {
  std::uint64_t total = 0;
  for (const auto& level : switches_) {
    for (const auto& sw : level) total += sw.connection_count();
  }
  return total;
}

NetworkModel::Hop NetworkModel::next_hop(const SwitchId& sw,
                                         std::uint32_t output) const {
  const SwitchNode& node = at(sw);
  const std::uint32_t m = tree_.child_arity();
  Hop hop;
  if (output < m) {
    // Down port: to a PE at level 0, to the child switch otherwise.
    if (sw.level == 0) {
      hop.to_node = true;
      hop.node = tree_.node_at(sw.index, output);
      return hop;
    }
    const FatTree::DownHop down = tree_.down_neighbor(sw, output);
    hop.next = down.child;
    // Enters the child through its upper port used by this cable.
    hop.input = at(down.child).up_port(down.child_up_port);
    return hop;
  }
  // Up port: to the parent switch, entering through the parent's down port
  // that leads back here.
  const std::uint32_t up_index = output - m;
  FT_REQUIRE(up_index < node.up_ports());
  const SwitchId parent = tree_.up_neighbor(sw, up_index);
  hop.next = parent;
  hop.input = at(parent).down_port(tree_.parent_down_port(sw));
  return hop;
}

}  // namespace ftsched
