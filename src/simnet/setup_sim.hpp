// DistributedSetupSim — the adaptive local baseline as a clocked protocol.
//
// Where LocalAdaptiveScheduler processes requests one at a time, this model
// releases ALL request tokens into the fabric at cycle 0 and lets them race,
// the way a real distributed circuit-setup protocol behaves (and the way the
// paper's SystemC simulation drove its switch nodes "in parallel"):
//
//   * ascending tokens at one switch contend for that switch's free up-ports
//     in the same cycle; the switch arbiter assigns distinct ports (policy
//     order) and tokens move one level per cycle,
//   * a token that reaches its common ancestor turns around; descending it
//     must claim the forced channel Dlink(h, δ_h, P_h) — if the channel is
//     held, or two tokens claim it in the same cycle, the losers die,
//   * dying tokens tear their held channels down one level per cycle
//     (a backward release wave), so channels freed by a casualty can be
//     grabbed by tokens that arrive later,
//   * a token claiming its level-0 down channel is granted next cycle.
//
// The run reports grants, per-token setup latency, and teardown traffic.
// Its schedulability tracks the sequential LocalAdaptiveScheduler closely
// but not exactly — simultaneity changes which token wins a conflict — and
// the cross-check between the two engines is one of the integration tests.
#pragma once

#include <optional>
#include <vector>

#include "core/request.hpp"
#include "core/scheduler.hpp"
#include "fault/retry_policy.hpp"
#include "linkstate/link_state.hpp"
#include "obs/link_telemetry.hpp"
#include "topology/fat_tree.hpp"
#include "util/rng.hpp"

namespace ftsched {

struct SetupSimOptions {
  PortPolicy policy = PortPolicy::kFirstFit;
  std::uint64_t seed = 0xd15713ULL;
  /// A token that dies re-launches from its source after its teardown wave
  /// completes, up to this many total attempts (1 = no retry). Retries model
  /// the practical protocol: by the time a loser has torn down, earlier
  /// winners have settled and later attempts see the true residual fabric.
  std::uint32_t max_attempts = 1;
  /// When set, relaunches are paced by the fault layer's RetryPolicy instead
  /// of max_attempts: a torn-down token waits delay_for(retry#) cycles at
  /// its source before re-entering the race, and gives up when the policy
  /// says so (the policy's max_retries replaces max_attempts). Spacing the
  /// losers out drains convoys that immediate relaunch re-creates. Unset
  /// (the default) preserves the relaunch-next-cycle behavior above.
  std::optional<RetryPolicy> relaunch;
  /// Safety valve: abort the run after this many cycles (a correct run
  /// quiesces within ~attempts · (2·levels + teardown chain)).
  std::uint64_t max_cycles = 1u << 20;
  /// Optional fabric telemetry: the LinkState is sampled at the end of
  /// every protocol cycle (t = cycle), so the series shows tokens claiming
  /// and tearing down channels as the setup race unfolds. Must outlive
  /// run(); null = no sampling, one branch per cycle.
  obs::LinkTelemetry* telemetry = nullptr;
};

struct SetupSimReport {
  ScheduleResult result;              ///< same shape the schedulers return
  std::uint64_t cycles = 0;           ///< cycles until the fabric quiesced
  std::uint64_t teardowns = 0;        ///< token deaths (incl. retried ones)
  std::uint64_t retries = 0;          ///< re-launches after a teardown
  std::vector<std::uint64_t> setup_latency;  ///< cycles, granted tokens only
};

class DistributedSetupSim {
 public:
  explicit DistributedSetupSim(const FatTree& tree,
                               SetupSimOptions options = {});

  /// Runs one batch to quiescence. `state` is reset first and holds the
  /// granted circuits afterwards, like Scheduler::schedule.
  SetupSimReport run(std::span<const Request> requests, LinkState& state);

 private:
  const FatTree& tree_;
  SetupSimOptions options_;
  Xoshiro256ss rng_;
};

}  // namespace ftsched
