// NetworkModel — all switch nodes of a fat tree, wired per the topology.
//
// Owns one SwitchNode per SW(h, τ) and answers "where does this output port
// lead": the structural glue between the arithmetic FatTree and the
// event-driven simulations.
#pragma once

#include <vector>

#include "simnet/switch_node.hpp"
#include "topology/fat_tree.hpp"

namespace ftsched {

class NetworkModel {
 public:
  /// The tree must outlive the model.
  explicit NetworkModel(const FatTree& tree);

  const FatTree& tree() const { return tree_; }

  SwitchNode& at(const SwitchId& sw);
  const SwitchNode& at(const SwitchId& sw) const;

  /// Resets every crossbar.
  void clear();

  /// Total programmed crossbar connections across the fabric.
  std::uint64_t total_connections() const;

  /// Where a cell leaving `sw` through dense output port `output` arrives.
  struct Hop {
    bool to_node = false;   ///< true: delivered to a PE (level-0 down port)
    NodeId node = 0;        ///< valid when to_node
    SwitchId next{};        ///< valid when !to_node
    std::uint32_t input = 0;  ///< dense input port at `next`
  };
  Hop next_hop(const SwitchId& sw, std::uint32_t output) const;

 private:
  const FatTree& tree_;
  std::vector<std::vector<SwitchNode>> switches_;  // [level][index]
};

}  // namespace ftsched
