#include "simnet/packet_sim.hpp"

#include <algorithm>

namespace ftsched {

PacketSim::PacketSim(const FatTree& tree, PacketSimOptions options)
    : tree_(tree), options_(options) {
  FT_REQUIRE(options_.queue_capacity >= 1);
  FT_REQUIRE(options_.injection_rate >= 0.0 && options_.injection_rate <= 1.0);
  FT_REQUIRE(options_.flits_per_packet >= 1);
  if (options_.routing == PacketRouting::kStatic) {
    FT_REQUIRE(tree.parent_arity() >= tree.child_arity());
  }
}

namespace {

/// Message descriptor; flits reference it by arena index. The routing
/// fields are only consulted at the switch currently holding the HEAD flit,
/// so sharing one descriptor across the worm's span is safe.
struct Message {
  NodeId dst = 0;
  std::uint32_t ancestor = 0;     ///< level to climb to
  bool descending = false;
  bool measured = false;          ///< injected inside the measure window
  std::uint64_t injected_at = 0;
  DigitVec dst_node_digits;       ///< base-m digits of dst (l digits)
};

struct Flit {
  std::uint32_t message = 0;
  bool head = false;
  bool tail = false;
};

constexpr std::int32_t kUnlocked = -1;

struct SwitchQueues {
  std::vector<std::deque<Flit>> in;        ///< dense input port -> FIFO
  std::vector<std::int32_t> in_lock;       ///< input -> locked output
  std::vector<std::int32_t> out_owner;     ///< output -> locking input
};

}  // namespace

PacketSimReport PacketSim::run() {
  const std::uint32_t levels = tree_.levels();
  const std::uint32_t m = tree_.child_arity();
  const std::uint32_t w = levels > 1 ? tree_.parent_arity() : 0;
  const std::uint32_t flits = options_.flits_per_packet;
  const MixedRadix node_system = MixedRadix::uniform(m, levels);
  Xoshiro256ss rng(options_.seed);

  // Fabric state.
  std::vector<std::vector<SwitchQueues>> fabric(levels);
  for (std::uint32_t h = 0; h < levels; ++h) {
    fabric[h].resize(tree_.switches_at(h));
    const std::uint32_t ports = m + (h + 1 < levels ? w : 0);
    for (auto& sw : fabric[h]) {
      sw.in.resize(ports);
      sw.in_lock.assign(ports, kUnlocked);
      sw.out_owner.assign(ports, kUnlocked);
    }
  }
  auto queue_at = [&](const SwitchId& sw, std::uint32_t port)
      -> std::deque<Flit>& { return fabric[sw.level][sw.index].in[port]; };

  // Message arena (never shrinks; index = flit.message).
  std::vector<Message> messages;

  // Per-PE source backlog (flits of not-yet-injected messages, in order)
  // and fixed permutation partners.
  std::vector<std::deque<Flit>> backlog(tree_.node_count());
  std::vector<NodeId> partner(tree_.node_count());
  for (NodeId n = 0; n < tree_.node_count(); ++n) partner[n] = n;
  if (!options_.uniform_destinations) {
    rng.shuffle(partner.begin(), partner.end());
  }

  PacketSimReport report;
  std::uint64_t window_deliveries = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t total_queues = 0;
  for (std::uint32_t h = 0; h < levels; ++h) {
    total_queues += tree_.switches_at(h) * (m + (h + 1 < levels ? w : 0));
  }

  // Normalized fabric fill per measure cycle. The run-local histogram keeps
  // the report's avg_queue_occupancy scoped to this run even when an
  // attached registry (which accumulates across runs) mirrors the samples.
  obs::Histogram occupancy(0.0, 1.0, 20);
  obs::Histogram* registry_occupancy =
      options_.metrics
          ? &options_.metrics->histogram("simnet.queue.occupancy", 0.0, 1.0,
                                         20)
          : nullptr;

  if (options_.telemetry && !options_.telemetry->configured()) {
    std::vector<obs::LinkLevelShape> shape;
    for (std::uint32_t h = 0; h < levels; ++h) {
      shape.push_back(obs::LinkLevelShape{
          tree_.switches_at(h), m + (h + 1 < levels ? w : 0)});
    }
    options_.telemetry->configure(std::move(shape));
  }

  // Per-switch, per-output round-robin grant pointers and the rotating
  // tie-break counter for adaptive up-port selection.
  std::vector<std::vector<std::vector<std::uint32_t>>> rr(levels);
  std::vector<std::vector<std::uint32_t>> adaptive_rotate(levels);
  for (std::uint32_t h = 0; h < levels; ++h) {
    const std::uint32_t ports = m + (h + 1 < levels ? w : 0);
    rr[h].assign(tree_.switches_at(h), std::vector<std::uint32_t>(ports, 0));
    adaptive_rotate[h].assign(tree_.switches_at(h), 0);
  }

  const std::uint64_t total_cycles =
      options_.warmup_cycles + options_.measure_cycles +
      /*drain=*/options_.warmup_cycles + 2000 + 20ull * flits;

  struct Move {
    Flit flit;
    SwitchId to{};
    std::uint32_t input = 0;
    bool eject = false;
  };
  std::vector<Move> moves;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool in_measure =
        cycle >= options_.warmup_cycles &&
        cycle < options_.warmup_cycles + options_.measure_cycles;

    // --- Injection: generate messages, then stream backlog flits into the
    // PE's leaf-switch FIFO as space permits (one flit per cycle per PE —
    // the injection channel has unit bandwidth too).
    if (cycle < options_.warmup_cycles + options_.measure_cycles) {
      for (NodeId src = 0; src < tree_.node_count(); ++src) {
        if (rng.uniform01() >= options_.injection_rate) continue;
        NodeId dst = options_.uniform_destinations
                         ? rng.below(tree_.node_count())
                         : partner[src];
        if (dst == src) dst = (dst + 1) % tree_.node_count();
        Message msg;
        msg.dst = dst;
        msg.injected_at = cycle;
        msg.measured = in_measure;
        const std::uint64_t src_leaf = tree_.leaf_switch(src).index;
        const std::uint64_t dst_leaf = tree_.leaf_switch(dst).index;
        msg.ancestor = tree_.common_ancestor_level(src_leaf, dst_leaf);
        msg.descending = msg.ancestor == 0;
        msg.dst_node_digits = node_system.decompose(dst);
        if (msg.measured) ++report.offered;
        const auto id = static_cast<std::uint32_t>(messages.size());
        messages.push_back(std::move(msg));
        for (std::uint32_t f = 0; f < flits; ++f) {
          backlog[src].push_back(Flit{id, f == 0, f + 1 == flits});
        }
      }
    }
    // Backlog drains every cycle — generation stops at the window's end,
    // but already-generated messages must still enter the fabric.
    for (NodeId src = 0; src < tree_.node_count(); ++src) {
      if (backlog[src].empty()) continue;
      const SwitchId leaf = tree_.leaf_switch(src);
      auto& q = queue_at(leaf, tree_.leaf_port(src));
      if (q.size() < options_.queue_capacity) {
        q.push_back(backlog[src].front());
        backlog[src].pop_front();
      }
    }

    // --- Switching.
    moves.clear();
    for (std::uint32_t h = 0; h < levels; ++h) {
      const std::uint32_t in_ports = m + (h + 1 < levels ? w : 0);
      for (std::uint64_t i = 0; i < tree_.switches_at(h); ++i) {
        const SwitchId sw{h, i};
        SwitchQueues& node = fabric[h][i];

        auto output_accepts = [&](std::uint32_t out, const Flit& f,
                                  Move& mv) -> bool {
          if (out < m && h == 0) {
            mv = Move{f, SwitchId{}, 0, true};
            return true;  // ejection always accepted
          }
          SwitchId next{};
          std::uint32_t next_in = 0;
          if (out < m) {
            const FatTree::DownHop hop = tree_.down_neighbor(sw, out);
            next = hop.child;
            next_in = m + hop.child_up_port;
          } else {
            next = tree_.up_neighbor(sw, out - m);
            next_in = tree_.parent_down_port(sw);
          }
          if (queue_at(next, next_in).size() >= options_.queue_capacity) {
            return false;
          }
          mv = Move{f, next, next_in, false};
          return true;
        };

        // Phase A: locked inputs stream their body flits (the channel is
        // reserved; only downstream credit can stall them).
        for (std::uint32_t in = 0; in < in_ports; ++in) {
          const std::int32_t out = node.in_lock[in];
          if (out == kUnlocked) continue;
          auto& q = node.in[in];
          if (q.empty()) continue;  // worm stretched thin upstream
          const Flit f = q.front();
          FT_ASSERT(!f.head);  // the head established the lock and left
          Move mv;
          if (!output_accepts(static_cast<std::uint32_t>(out), f, mv)) {
            continue;
          }
          q.pop_front();
          moves.push_back(mv);
          if (f.tail) {
            node.out_owner[static_cast<std::size_t>(out)] = kUnlocked;
            node.in_lock[in] = kUnlocked;
          }
        }

        // Phase B: head flits compute their desired output...
        std::vector<std::int64_t> want(in_ports, -1);
        for (std::uint32_t in = 0; in < in_ports; ++in) {
          if (node.in_lock[in] != kUnlocked) continue;
          auto& q = node.in[in];
          if (q.empty() || !q.front().head) continue;
          Message& msg = messages[q.front().message];
          if (!msg.descending && h == msg.ancestor) msg.descending = true;
          if (msg.descending) {
            want[in] = msg.dst_node_digits[h];
          } else if (options_.routing == PacketRouting::kStatic) {
            want[in] = m + msg.dst_node_digits[h];
          } else {
            // Adaptive: up port whose downstream FIFO has the most free
            // slots; rotating scan start so ties spread across ports.
            const std::uint32_t start = adaptive_rotate[h][i]++ % w;
            std::uint32_t best_port = start;
            std::size_t best_free = 0;
            for (std::uint32_t k = 0; k < w; ++k) {
              const std::uint32_t up = (start + k) % w;
              const SwitchId parent = tree_.up_neighbor(sw, up);
              const auto& down_q = fabric[parent.level][parent.index]
                                       .in[tree_.parent_down_port(sw)];
              const std::size_t free =
                  options_.queue_capacity -
                  std::min<std::size_t>(options_.queue_capacity,
                                        down_q.size());
              if (free > best_free) {
                best_free = free;
                best_port = up;
              }
            }
            want[in] = m + best_port;
          }
        }

        // ...and arbitrate per output (skipping outputs locked to worms).
        for (std::uint32_t out = 0; out < in_ports; ++out) {
          if (node.out_owner[out] != kUnlocked) continue;
          std::int64_t granted = -1;
          for (std::uint32_t k = 0; k < in_ports; ++k) {
            const std::uint32_t in = (rr[h][i][out] + k) % in_ports;
            if (want[in] == out) {
              granted = in;
              break;
            }
          }
          if (granted < 0) continue;
          const auto gin = static_cast<std::uint32_t>(granted);
          auto& q = node.in[gin];
          const Flit f = q.front();
          Move mv;
          if (!output_accepts(out, f, mv)) continue;
          q.pop_front();
          moves.push_back(mv);
          rr[h][i][out] = (gin + 1) % in_ports;
          if (!f.tail) {
            // Multi-flit worm: lock the channel until the tail passes.
            node.in_lock[gin] = static_cast<std::int32_t>(out);
            node.out_owner[out] = static_cast<std::int32_t>(gin);
          }
        }
      }
    }

    // --- Commit moves (arrivals visible next cycle).
    for (const Move& mv : moves) {
      if (mv.eject) {
        const Message& msg = messages[mv.flit.message];
        if (mv.flit.tail) {
          if (in_measure) ++window_deliveries;
          if (msg.measured) {
            ++report.delivered;
            const std::uint64_t latency = cycle + 1 - msg.injected_at;
            latency_sum += latency;
            report.max_latency =
                std::max(report.max_latency, static_cast<double>(latency));
          }
        }
        continue;
      }
      queue_at(mv.to, mv.input).push_back(mv.flit);
    }

    // --- Occupancy sampling.
    if (in_measure) {
      std::uint64_t filled = 0;
      for (std::uint32_t h = 0; h < levels; ++h) {
        for (const auto& sw : fabric[h]) {
          for (const auto& q : sw.in) filled += q.size();
        }
      }
      const double fill = static_cast<double>(filled) /
                          (static_cast<double>(total_queues) *
                           static_cast<double>(options_.queue_capacity));
      occupancy.observe(fill);
      if (registry_occupancy) registry_occupancy->observe(fill);
      if (options_.telemetry) {
        options_.telemetry->begin_sample(cycle);
        for (std::uint32_t h = 0; h < levels; ++h) {
          for (std::uint64_t i = 0; i < tree_.switches_at(h); ++i) {
            const auto& in = fabric[h][i].in;
            const auto ports = static_cast<std::uint32_t>(in.size());
            for (std::uint32_t p = 0; p < ports; ++p) {
              options_.telemetry->record_channel(h, i, p,
                                                 obs::ChannelDir::kUp,
                                                 !in[p].empty());
            }
          }
        }
        options_.telemetry->end_sample();
      }
    }
  }

  if (report.delivered > 0) {
    report.avg_latency = static_cast<double>(latency_sum) /
                         static_cast<double>(report.delivered);
  }
  report.throughput =
      static_cast<double>(window_deliveries) /
      (static_cast<double>(tree_.node_count()) *
       static_cast<double>(options_.measure_cycles));
  if (occupancy.count() > 0) {
    report.avg_queue_occupancy =
        occupancy.sum() / static_cast<double>(occupancy.count());
  }
  return report;
}

}  // namespace ftsched
