// DeliverySim — end-to-end validation of a computed schedule.
//
// This is the check the paper's methodology describes: "If a requested
// connection is successfully established, the request will be forwarded to
// the destination node. By checking the control signals received at
// destination nodes, we are able to compute the number of scheduled
// connections." DeliverySim programs every granted circuit into the switch
// crossbars (conflicts surface as errors when two circuits try to drive the
// same port), injects one probe cell per circuit, advances the event-driven
// simulation one switch hop per cycle, and verifies that each cell arrives
// at exactly its destination PE after exactly 2·H(+1) hops.
#pragma once

#include <span>
#include <vector>

#include "des/simulator.hpp"
#include "simnet/network_model.hpp"
#include "topology/path.hpp"

namespace ftsched {

struct DeliveryReport {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;       ///< cells that reached their own dst PE
  std::uint64_t misdelivered = 0;    ///< cells that reached a wrong PE
  std::uint64_t stuck = 0;           ///< cells that hit an unprogrammed input
  SimTime last_arrival = 0;
  std::vector<SimTime> latencies;    ///< per delivered cell, in hops

  bool all_delivered() const {
    return misdelivered == 0 && stuck == 0 && delivered == injected;
  }
};

class DeliverySim {
 public:
  explicit DeliverySim(const FatTree& tree) : tree_(tree), network_(tree) {}

  /// Programs the crossbars for the given circuits. Fails on the first
  /// conflicting connection (two circuits sharing a channel or port).
  Status configure(std::span<const Path> circuits);

  /// Injects one cell per configured circuit at time 0 and runs to
  /// quiescence (1 cycle per switch hop).
  DeliveryReport run();

  const NetworkModel& network() const { return network_; }

  /// Clears crossbars and configured circuits for reuse.
  void reset();

 private:
  const FatTree& tree_;
  NetworkModel network_;
  std::vector<Path> circuits_;
};

}  // namespace ftsched
