#include "simnet/switch_node.hpp"

namespace ftsched {

Status SwitchNode::connect(std::uint32_t input, std::uint32_t output) {
  FT_REQUIRE(input < crossbar_.size());
  FT_REQUIRE(output < output_driven_.size());
  if (crossbar_[input] != kUnconnected) {
    return Status::error(to_string(id_) + ": input port " +
                         std::to_string(input) + " already routed to " +
                         std::to_string(crossbar_[input]));
  }
  if (output_driven_[output]) {
    return Status::error(to_string(id_) + ": output port " +
                         std::to_string(output) +
                         " already driven by another input");
  }
  crossbar_[input] = output;
  output_driven_[output] = true;
  ++connections_;
  return Status();
}

void SwitchNode::clear() {
  crossbar_.assign(crossbar_.size(), kUnconnected);
  output_driven_.assign(output_driven_.size(), false);
  connections_ = 0;
}

}  // namespace ftsched
