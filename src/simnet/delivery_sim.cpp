#include "simnet/delivery_sim.hpp"

namespace ftsched {

Status DeliverySim::configure(std::span<const Path> circuits) {
  for (const Path& path : circuits) {
    Status legal = check_path_legal(tree_, path);
    if (!legal.ok()) return legal;

    const std::uint32_t H = path.ancestor_level;
    const std::uint64_t src_leaf = tree_.leaf_switch(path.src).index;
    const std::uint64_t dst_leaf = tree_.leaf_switch(path.dst).index;

    if (H == 0) {
      // Circuit inside one leaf crossbar: PE port to PE port.
      SwitchNode& sw = network_.at(SwitchId{0, src_leaf});
      Status s = sw.connect(sw.down_port(tree_.leaf_port(path.src)),
                            sw.down_port(tree_.leaf_port(path.dst)));
      if (!s.ok()) return s;
      circuits_.push_back(path);
      continue;
    }

    // Upward side: σ_0 enters from the source PE; σ_h (h >= 1) from the
    // down port leading back to σ_{h-1}; each exits through up port P_h.
    SwitchId prev{0, src_leaf};
    for (std::uint32_t h = 0; h < H; ++h) {
      const SwitchId sigma{h, tree_.side_switch(src_leaf, h, path.ports)};
      SwitchNode& sw = network_.at(sigma);
      const std::uint32_t input =
          h == 0 ? sw.down_port(tree_.leaf_port(path.src))
                 : sw.down_port(tree_.parent_down_port(prev));
      Status s = sw.connect(input, sw.up_port(path.ports[h]));
      if (!s.ok()) return s;
      prev = sigma;
    }

    // Ancestor: arrives from σ_{H-1}, leaves toward δ_{H-1}.
    {
      const SwitchId ancestor{H, tree_.side_switch(src_leaf, H, path.ports)};
      SwitchNode& sw = network_.at(ancestor);
      const SwitchId sigma_below{H - 1,
                                 tree_.side_switch(src_leaf, H - 1, path.ports)};
      const SwitchId delta_below{H - 1,
                                 tree_.side_switch(dst_leaf, H - 1, path.ports)};
      Status s =
          sw.connect(sw.down_port(tree_.parent_down_port(sigma_below)),
                     sw.down_port(tree_.parent_down_port(delta_below)));
      if (!s.ok()) return s;
    }

    // Downward side: δ_h receives from its parent through upper port P_h
    // (Theorem 2) and forwards down toward δ_{h-1} / the destination PE.
    for (std::uint32_t h = H; h-- > 0;) {
      const SwitchId delta{h, tree_.side_switch(dst_leaf, h, path.ports)};
      SwitchNode& sw = network_.at(delta);
      std::uint32_t output;
      if (h == 0) {
        output = sw.down_port(tree_.leaf_port(path.dst));
      } else {
        const SwitchId delta_below{
            h - 1, tree_.side_switch(dst_leaf, h - 1, path.ports)};
        output = sw.down_port(tree_.parent_down_port(delta_below));
      }
      Status s = sw.connect(sw.up_port(path.ports[h]), output);
      if (!s.ok()) return s;
    }

    circuits_.push_back(path);
  }
  return Status();
}

DeliveryReport DeliverySim::run() {
  Simulator sim;
  DeliveryReport report;
  report.injected = circuits_.size();

  struct Cell {
    NodeId expected_dst;
    SimTime injected_at;
  };

  // Recursive hop function: a cell sits at (switch, dense input port).
  // std::function allows the self-reference; one cycle per hop.
  std::function<void(Cell, SwitchId, std::uint32_t)> arrive =
      [&](Cell cell, SwitchId sw, std::uint32_t input) {
        const auto output = network_.at(sw).route(input);
        if (!output) {
          ++report.stuck;
          return;
        }
        const NetworkModel::Hop hop = network_.next_hop(sw, *output);
        if (hop.to_node) {
          if (hop.node == cell.expected_dst) {
            ++report.delivered;
            report.latencies.push_back(sim.now() - cell.injected_at + 1);
            report.last_arrival = std::max(report.last_arrival, sim.now() + 1);
          } else {
            ++report.misdelivered;
          }
          return;
        }
        sim.schedule_in(1, [&, cell, hop] { arrive(cell, hop.next, hop.input); });
      };

  for (const Path& path : circuits_) {
    const SwitchId entry = tree_.leaf_switch(path.src);
    const std::uint32_t input =
        network_.at(entry).down_port(tree_.leaf_port(path.src));
    const Cell cell{path.dst, 0};
    sim.schedule_at(0, [&, cell, entry, input] { arrive(cell, entry, input); });
  }
  sim.run();
  return report;
}

void DeliverySim::reset() {
  network_.clear();
  circuits_.clear();
}

}  // namespace ftsched
