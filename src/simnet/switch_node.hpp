// SwitchNode — a 2w-port crossbar switch model.
//
// Ports follow the paper's Figure 1(a): m bidirectional ports face down
// (children at levels > 0, processing elements at level 0) and w face up.
// Internally a port is a dense index: down ports occupy [0, m), up ports
// [m, m+w). The crossbar maps input channels to output channels injectively;
// programming a conflicting connection is reported, not absorbed — that is
// exactly the error a broken scheduler would cause.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/ids.hpp"
#include "util/contracts.hpp"
#include "util/result.hpp"

namespace ftsched {

class SwitchNode {
 public:
  SwitchNode(SwitchId id, std::uint32_t down_ports, std::uint32_t up_ports)
      : id_(id),
        down_ports_(down_ports),
        up_ports_(up_ports),
        crossbar_(down_ports + up_ports, kUnconnected),
        output_driven_(down_ports + up_ports, false) {}

  SwitchId id() const { return id_; }
  std::uint32_t down_ports() const { return down_ports_; }
  std::uint32_t up_ports() const { return up_ports_; }

  std::uint32_t down_port(std::uint32_t i) const {
    FT_REQUIRE(i < down_ports_);
    return i;
  }
  std::uint32_t up_port(std::uint32_t i) const {
    FT_REQUIRE(i < up_ports_);
    return down_ports_ + i;
  }

  /// Programs input -> output. Fails if the input is already routed or the
  /// output already driven by another input.
  Status connect(std::uint32_t input, std::uint32_t output);

  /// Where the crossbar sends `input`, if connected.
  std::optional<std::uint32_t> route(std::uint32_t input) const {
    FT_REQUIRE(input < crossbar_.size());
    if (crossbar_[input] == kUnconnected) return std::nullopt;
    return crossbar_[input];
  }

  bool output_driven(std::uint32_t output) const {
    FT_REQUIRE(output < output_driven_.size());
    return output_driven_[output];
  }

  /// Number of programmed crossbar connections.
  std::uint32_t connection_count() const { return connections_; }

  void clear();

 private:
  static constexpr std::uint32_t kUnconnected = UINT32_MAX;

  SwitchId id_;
  std::uint32_t down_ports_;
  std::uint32_t up_ports_;
  std::uint32_t connections_ = 0;
  std::vector<std::uint32_t> crossbar_;    // input -> output
  std::vector<bool> output_driven_;
};

}  // namespace ftsched
