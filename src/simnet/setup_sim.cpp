#include "simnet/setup_sim.hpp"

#include <map>
#include <tuple>

#include "linkstate/telemetry.hpp"

namespace ftsched {

DistributedSetupSim::DistributedSetupSim(const FatTree& tree,
                                         SetupSimOptions options)
    : tree_(tree), options_(options), rng_(options.seed) {}

namespace {

struct Token {
  enum class State : std::uint8_t {
    kAscending,
    kDescending,
    kTearingDown,
    kWaiting,  ///< torn down, pacing a RetryPolicy delay before relaunch
    kGranted,
    kDead,
  };

  std::size_t request_index = 0;
  State state = State::kAscending;
  std::uint32_t level = 0;     ///< levels climbed so far (ascending)
  std::uint64_t sigma = 0;     ///< σ_level while ascending
  std::uint32_t ancestor = 0;  ///< H
  std::uint64_t src_leaf = 0;
  std::uint64_t dst_leaf = 0;
  DigitVec ports;              ///< held P_0 … P_{level-1}
  /// σ_h for each held up channel (parallel to ports).
  SmallVec<std::uint64_t, kMaxTreeLevels> up_switches;
  std::uint32_t down_claimed = 0;  ///< down channels held (levels H-1 …)
  std::uint64_t start_cycle = 0;
  std::uint32_t attempts = 1;      ///< launches so far (this one included)
  std::uint64_t relaunch_at = 0;   ///< kWaiting: first cycle it may ascend
};

bool active(const Token& t) {
  return t.state == Token::State::kAscending ||
         t.state == Token::State::kDescending ||
         t.state == Token::State::kTearingDown ||
         t.state == Token::State::kWaiting;
}

}  // namespace

SetupSimReport DistributedSetupSim::run(std::span<const Request> requests,
                                        LinkState& state) {
  state.reset();
  SetupSimReport report;
  report.result.outcomes.resize(requests.size());
  report.setup_latency.clear();
  LeafTracker leaves(tree_.node_count());

  std::vector<Token> tokens;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    RequestOutcome& out = report.result.outcomes[i];
    out.path = Path{r.src, r.dst, 0, {}};
    if (!leaves.try_claim(r.src, r.dst)) {
      out.reason = RejectReason::kLeafBusy;
      continue;
    }
    const std::uint64_t src_leaf = tree_.leaf_switch(r.src).index;
    const std::uint64_t dst_leaf = tree_.leaf_switch(r.dst).index;
    const std::uint32_t H = tree_.common_ancestor_level(src_leaf, dst_leaf);
    if (H == 0) {
      out.granted = true;  // resolved inside the leaf crossbar, cycle 0
      continue;
    }
    Token t;
    t.request_index = i;
    t.sigma = src_leaf;
    t.src_leaf = src_leaf;
    t.dst_leaf = dst_leaf;
    t.ancestor = H;
    out.path.ancestor_level = H;
    tokens.push_back(t);
  }

  std::uint64_t cycle = 0;
  auto any_active = [&] {
    for (const Token& t : tokens) {
      if (active(t)) return true;
    }
    return false;
  };

  while (any_active()) {
    FT_REQUIRE(cycle < options_.max_cycles);

    // ---- Phase 0: release waiting tokens whose backoff has elapsed. ------
    for (Token& t : tokens) {
      if (t.state == Token::State::kWaiting && cycle >= t.relaunch_at) {
        t.state = Token::State::kAscending;
      }
    }

    // ---- Phase 1: collect intents against the cycle-start state. --------
    // Ascending: per-switch list of contenders. Descending: per-channel.
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::vector<std::size_t>>
        up_intents;  // (level, switch) -> token indices
    std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>,
             std::vector<std::size_t>>
        down_intents;  // (level, δ_h, port) -> token indices

    for (std::size_t ti = 0; ti < tokens.size(); ++ti) {
      Token& t = tokens[ti];
      if (t.state == Token::State::kAscending) {
        up_intents[{t.level, t.sigma}].push_back(ti);
      } else if (t.state == Token::State::kDescending) {
        const std::uint32_t h = t.ancestor - 1 - t.down_claimed;
        const std::uint64_t delta = tree_.side_switch(t.dst_leaf, h, t.ports);
        down_intents[{h, delta, t.ports[h]}].push_back(ti);
      }
    }

    // ---- Phase 2a: per-switch up-port arbitration. -----------------------
    struct UpMove {
      std::size_t token;
      std::uint32_t port;
    };
    std::vector<UpMove> up_moves;
    std::vector<std::size_t> casualties;

    const std::uint32_t w = tree_.parent_arity();
    for (auto& [key, contenders] : up_intents) {
      const auto [h, sw] = key;
      // Priority = request order (lower index wins), as a hardware daisy
      // chain would resolve it. Each token scans the cycle-start free ports
      // starting from its own offset: 0 on the first attempt (plain
      // greedy), rotated by the attempt count on retries so a relaunched
      // token does not deterministically re-walk into the same conflict.
      std::vector<bool> taken(w, false);
      for (const std::size_t ti : contenders) {
        Token& t = tokens[ti];
        std::uint32_t offset = 0;
        switch (options_.policy) {
          case PortPolicy::kFirstFit:
          case PortPolicy::kRoundRobin:
          // The token protocol carries no global capacity signal; the
          // balanced policies degrade to their oblivious scan rules here.
          case PortPolicy::kBalanced:
          case PortPolicy::kBalancedRR:
            offset = (t.attempts - 1) % w;
            break;
          case PortPolicy::kRandom:
          case PortPolicy::kBalancedRandom:
            offset = static_cast<std::uint32_t>(rng_.below(w));
            break;
        }
        std::optional<std::uint32_t> pick;
        for (std::uint32_t i = 0; i < w; ++i) {
          const std::uint32_t p = (offset + i) % w;
          if (!taken[p] && state.ulink(h, sw, p)) {
            pick = p;
            break;
          }
        }
        if (pick) {
          taken[*pick] = true;
          up_moves.push_back(UpMove{ti, *pick});
        } else {
          casualties.push_back(ti);
          RequestOutcome& out = report.result.outcomes[t.request_index];
          out.reason = RejectReason::kNoLocalUplink;
          out.fail_level = t.level;
        }
      }
    }

    // ---- Phase 2b: per-channel down arbitration. -------------------------
    struct DownMove {
      std::size_t token;
      std::uint32_t level;
      std::uint64_t delta;
      std::uint32_t port;
    };
    std::vector<DownMove> down_moves;

    for (auto& [key, claimants] : down_intents) {
      const auto [h, delta, port] = key;
      std::size_t winner_slot = claimants.size();  // none
      if (state.dlink(h, delta, port)) winner_slot = 0;
      for (std::size_t k = 0; k < claimants.size(); ++k) {
        if (k == winner_slot) {
          down_moves.push_back(DownMove{claimants[k], h, delta, port});
        } else {
          Token& t = tokens[claimants[k]];
          casualties.push_back(claimants[k]);
          RequestOutcome& out = report.result.outcomes[t.request_index];
          out.reason = RejectReason::kDownConflict;
          out.fail_level = h;
        }
      }
    }

    // ---- Phase 3: commit moves. ------------------------------------------
    for (const UpMove& mv : up_moves) {
      Token& t = tokens[mv.token];
      state.set_ulink(t.level, t.sigma, mv.port, false);
      t.up_switches.push_back(t.sigma);
      t.ports.push_back(mv.port);
      t.sigma = tree_.ascend(t.level, t.sigma, mv.port);
      ++t.level;
      if (t.level == t.ancestor) t.state = Token::State::kDescending;
    }
    for (const DownMove& mv : down_moves) {
      Token& t = tokens[mv.token];
      state.set_dlink(mv.level, mv.delta, mv.port, false);
      ++t.down_claimed;
      if (mv.level == 0) {
        t.state = Token::State::kGranted;
        RequestOutcome& out = report.result.outcomes[t.request_index];
        out.granted = true;
        out.reason = RejectReason::kNone;  // may have failed earlier attempts
        out.path.ports = t.ports;
        report.setup_latency.push_back(cycle + 1 - t.start_cycle);
      }
    }
    for (std::size_t ti : casualties) {
      Token& t = tokens[ti];
      t.state = Token::State::kTearingDown;
      ++report.teardowns;
      // Leaf channels stay claimed while a retry is still possible; they are
      // released at final death below.
    }

    // ---- Phase 4: teardown wave — one channel per cycle, newest first. ---
    for (Token& t : tokens) {
      if (t.state != Token::State::kTearingDown) continue;
      if (t.down_claimed > 0) {
        --t.down_claimed;
        const std::uint32_t h = t.ancestor - 1 - t.down_claimed;
        const std::uint64_t delta = tree_.side_switch(t.dst_leaf, h, t.ports);
        state.set_dlink(h, delta, t.ports[h], true);
      } else if (!t.ports.empty()) {
        const auto h = static_cast<std::uint32_t>(t.ports.size() - 1);
        state.set_ulink(h, t.up_switches[h], t.ports[h], true);
        t.ports.pop_back();
        t.up_switches.pop_back();
      } else if (std::optional<std::uint64_t> delay =
                     options_.relaunch
                         ? options_.relaunch->delay_for(t.attempts, rng_)
                         : (t.attempts < options_.max_attempts
                                ? std::optional<std::uint64_t>(0)
                                : std::nullopt)) {
        // Relaunch from the source — next cycle by default, or after the
        // RetryPolicy's backoff when one is configured. The delay is drawn
        // exactly once per relaunch (attempt numbers are 1-based retry
        // counts), so jittered policies stay deterministic per seed.
        ++t.attempts;
        ++report.retries;
        if (*delay > 0) {
          t.state = Token::State::kWaiting;
          t.relaunch_at = cycle + 1 + *delay;
        } else {
          t.state = Token::State::kAscending;
        }
        t.level = 0;
        t.sigma = t.src_leaf;
        // start_cycle is intentionally NOT reset: setup latency measures
        // injection-to-grant, teardown and relaunch time included.
      } else {
        t.state = Token::State::kDead;
        leaves.release(requests[t.request_index].src,
                       requests[t.request_index].dst);
        RequestOutcome& out = report.result.outcomes[t.request_index];
        out.path.ports.clear();
        out.path.ancestor_level = 0;
      }
    }

    // Cycle boundary: the fabric now holds every channel claimed up to and
    // including this cycle, minus the teardown wave's releases.
    if (options_.telemetry) {
      sample_link_state(state, cycle, *options_.telemetry);
    }

    ++cycle;
  }

  report.cycles = cycle;
  return report;
}

}  // namespace ftsched
