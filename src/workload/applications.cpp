#include "workload/applications.hpp"

#include "workload/patterns.hpp"

namespace ftsched {

std::vector<ApplicationPhase> fft_butterfly_phases(const FatTree& tree) {
  const std::uint32_t m = tree.child_arity();
  const std::uint32_t l = tree.levels();
  const MixedRadix system = MixedRadix::uniform(m, l);
  std::vector<ApplicationPhase> phases;
  for (std::uint32_t digit = 0; digit < l; ++digit) {
    for (std::uint32_t offset = 1; offset < m; ++offset) {
      ApplicationPhase phase;
      phase.label = "fft-d" + std::to_string(digit) + "+" +
                    std::to_string(offset);
      phase.requests.reserve(tree.node_count());
      for (NodeId src = 0; src < tree.node_count(); ++src) {
        DigitVec digits = system.decompose(src);
        digits[digit] = (digits[digit] + offset) % m;
        phase.requests.push_back(Request{src, system.compose(digits)});
      }
      phases.push_back(std::move(phase));
    }
  }
  return phases;
}

std::vector<ApplicationPhase> all_to_all_phases(const FatTree& tree,
                                                std::uint64_t rounds) {
  const std::uint64_t n = tree.node_count();
  if (rounds == 0 || rounds > n - 1) rounds = n - 1;
  std::vector<ApplicationPhase> phases;
  phases.reserve(rounds);
  for (std::uint64_t k = 1; k <= rounds; ++k) {
    ApplicationPhase phase;
    phase.label = "a2a-shift" + std::to_string(k);
    phase.requests.reserve(n);
    for (NodeId src = 0; src < n; ++src) {
      phase.requests.push_back(Request{src, (src + k) % n});
    }
    phases.push_back(std::move(phase));
  }
  return phases;
}

std::vector<ApplicationPhase> stencil_phases(const FatTree& tree,
                                             std::uint32_t dimensions) {
  FT_REQUIRE(dimensions >= 1 && dimensions <= 4);
  const std::uint64_t n = tree.node_count();
  // Densest grid: sides as equal as possible with product == n. Greedy:
  // repeatedly take the largest integer side not exceeding the remaining
  // d-th root. For the m^l node counts this yields exact factorizations.
  std::vector<std::uint64_t> sides(dimensions, 1);
  {
    std::uint64_t remaining = n;
    for (std::uint32_t d = 0; d < dimensions; ++d) {
      const std::uint32_t dims_left = dimensions - d;
      // Ideal side ≈ remaining^(1/dims_left); take the nearest divisor at
      // or below it, falling back to the smallest divisor above.
      std::uint64_t target = 1;
      while ((target + 1) > 0) {
        std::uint64_t power = 1;
        bool fits = true;
        for (std::uint32_t i = 0; i < dims_left; ++i) {
          if (power > remaining / (target + 1)) {
            fits = false;
            break;
          }
          power *= target + 1;
        }
        if (!fits) break;
        ++target;
      }
      std::uint64_t side = 1;
      for (std::uint64_t cand = target; cand >= 1; --cand) {
        if (remaining % cand == 0) {
          side = cand;
          break;
        }
      }
      if (side == 1 && target < remaining) {
        for (std::uint64_t cand = target + 1; cand <= remaining; ++cand) {
          if (remaining % cand == 0) {
            side = cand;
            break;
          }
        }
      }
      sides[d] = side;
      remaining /= side;
    }
    FT_ASSERT(remaining == 1);
  }

  std::vector<std::uint64_t> stride(dimensions, 1);
  for (std::uint32_t d = 1; d < dimensions; ++d) {
    stride[d] = stride[d - 1] * sides[d - 1];
  }

  std::vector<ApplicationPhase> phases;
  for (std::uint32_t d = 0; d < dimensions; ++d) {
    if (sides[d] < 2) continue;  // no exchange along a degenerate axis
    for (const int dir : {+1, -1}) {
      ApplicationPhase phase;
      phase.label = "stencil-dim" + std::to_string(d) +
                    (dir > 0 ? "+" : "-");
      phase.requests.reserve(n);
      for (NodeId src = 0; src < n; ++src) {
        const std::uint64_t coord = (src / stride[d]) % sides[d];
        const std::uint64_t next =
            dir > 0 ? (coord + 1) % sides[d]
                    : (coord + sides[d] - 1) % sides[d];
        const NodeId dst = src + (next - coord) * stride[d];
        phase.requests.push_back(Request{src, dst});
      }
      phases.push_back(std::move(phase));
    }
  }
  return phases;
}

std::vector<ApplicationPhase> random_phases(const FatTree& tree,
                                            std::size_t count,
                                            Xoshiro256ss& rng) {
  std::vector<ApplicationPhase> phases;
  phases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ApplicationPhase phase;
    phase.label = "random" + std::to_string(i);
    phase.requests = random_permutation(tree.node_count(), rng);
    phases.push_back(std::move(phase));
  }
  return phases;
}

}  // namespace ftsched
