#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace ftsched {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# ftsched-trace v1\n";
  os << "# nodes " << trace.node_count << "\n";
  for (const Request& r : trace.requests) {
    os << r.src << ' ' << r.dst << '\n';
  }
}

Result<Trace> read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "# ftsched-trace v1") {
    return Status::error("trace: missing or unsupported version header");
  }
  Trace trace;
  if (!std::getline(is, line)) {
    return Status::error("trace: missing node-count header");
  }
  {
    std::istringstream hdr(line);
    std::string hash;
    std::string word;
    if (!(hdr >> hash >> word >> trace.node_count) || hash != "#" ||
        word != "nodes") {
      return Status::error("trace: malformed node-count header: " + line);
    }
    if (trace.node_count == 0) {
      return Status::error("trace: node count must be positive");
    }
  }
  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream body(line);
    Request r;
    if (!(body >> r.src >> r.dst)) {
      return Status::error("trace: malformed request at line " +
                           std::to_string(line_no) + ": " + line);
    }
    std::string excess;
    if (body >> excess) {
      return Status::error("trace: trailing tokens at line " +
                           std::to_string(line_no) + ": " + line);
    }
    if (r.src >= trace.node_count || r.dst >= trace.node_count) {
      return Status::error("trace: endpoint out of range at line " +
                           std::to_string(line_no) + ": " + line);
    }
    trace.requests.push_back(r);
  }
  return trace;
}

}  // namespace ftsched
