// Request-trace persistence.
//
// A trace file pins down a workload exactly — the repository's experiment
// pipeline regenerates workloads from seeds, but traces let users replay a
// production request batch through any scheduler, or archive a failing case
// from a fuzz run. Format (line-oriented text):
//
//   # ftsched-trace v1
//   # nodes <N>
//   <src> <dst>
//   ...
//
// '#' lines after the header are comments.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/request.hpp"
#include "util/result.hpp"

namespace ftsched {

struct Trace {
  std::uint64_t node_count = 0;
  std::vector<Request> requests;
};

void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace; rejects malformed headers, non-numeric fields, and
/// endpoints outside [0, node_count).
Result<Trace> read_trace(std::istream& is);

}  // namespace ftsched
