#include "workload/patterns.hpp"

#include <algorithm>
#include <numeric>

namespace ftsched {

std::string_view to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kRandomPermutation:
      return "random-permutation";
    case TrafficPattern::kDigitReversal:
      return "digit-reversal";
    case TrafficPattern::kDigitRotation:
      return "digit-rotation";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kComplement:
      return "complement";
    case TrafficPattern::kShift:
      return "shift";
    case TrafficPattern::kNeighbor:
      return "neighbor";
    case TrafficPattern::kHotSpot:
      return "hot-spot";
  }
  FT_UNREACHABLE();
}

std::vector<Request> random_permutation(std::uint64_t node_count,
                                        Xoshiro256ss& rng) {
  std::vector<NodeId> destinations(node_count);
  std::iota(destinations.begin(), destinations.end(), NodeId{0});
  rng.shuffle(destinations.begin(), destinations.end());
  std::vector<Request> batch;
  batch.reserve(node_count);
  for (NodeId src = 0; src < node_count; ++src) {
    batch.push_back(Request{src, destinations[src]});
  }
  return batch;
}

namespace {

/// Destination of `src` under a structured pattern; node digits are base m
/// with l positions (node = leaf-switch digits + leaf port digit).
NodeId structured_destination(const FatTree& tree, TrafficPattern pattern,
                              NodeId src) {
  const std::uint64_t n = tree.node_count();
  const MixedRadix system =
      MixedRadix::uniform(tree.child_arity(), tree.levels());
  switch (pattern) {
    case TrafficPattern::kDigitReversal: {
      DigitVec d = system.decompose(src);
      DigitVec r;
      for (std::size_t i = d.size(); i-- > 0;) r.push_back(d[i]);
      return system.compose(r);
    }
    case TrafficPattern::kDigitRotation: {
      DigitVec d = system.decompose(src);
      DigitVec r;
      for (std::size_t i = 1; i < d.size(); ++i) r.push_back(d[i]);
      r.push_back(d[0]);
      return system.compose(r);
    }
    case TrafficPattern::kTranspose: {
      DigitVec d = system.decompose(src);
      const std::size_t half = d.size() / 2;
      DigitVec r;
      // Swap low and high halves; with an odd digit count the middle digit
      // stays in place.
      for (std::size_t i = d.size() - half; i < d.size(); ++i) {
        r.push_back(d[i]);
      }
      for (std::size_t i = half; i < d.size() - half; ++i) r.push_back(d[i]);
      for (std::size_t i = 0; i < half; ++i) r.push_back(d[i]);
      return system.compose(r);
    }
    case TrafficPattern::kComplement:
      return n - 1 - src;
    case TrafficPattern::kShift:
      return (src + n / 2) % n;
    case TrafficPattern::kNeighbor:
      // Pairs (2k, 2k+1) exchange; with an odd node count the last PE is a
      // fixed point.
      if (src % 2 == 0) return src + 1 < n ? src + 1 : src;
      return src - 1;
    default:
      FT_UNREACHABLE();
  }
}

}  // namespace

std::vector<Request> generate_pattern(const FatTree& tree,
                                      TrafficPattern pattern,
                                      Xoshiro256ss& rng,
                                      const WorkloadOptions& options) {
  FT_REQUIRE(options.load_factor > 0.0 && options.load_factor <= 1.0);
  const std::uint64_t n = tree.node_count();

  // Which sources participate.
  std::vector<NodeId> sources;
  sources.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (options.load_factor >= 1.0 || rng.uniform01() < options.load_factor) {
      sources.push_back(s);
    }
  }

  std::vector<Request> batch;
  batch.reserve(sources.size());

  switch (pattern) {
    case TrafficPattern::kRandomPermutation: {
      // Distinct random destinations for the participating sources: a random
      // injection from sources into [0, N).
      std::vector<NodeId> pool(n);
      std::iota(pool.begin(), pool.end(), NodeId{0});
      rng.shuffle(pool.begin(), pool.end());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        batch.push_back(Request{sources[i], pool[i]});
      }
      break;
    }
    case TrafficPattern::kHotSpot: {
      FT_REQUIRE(options.hotspot_fraction >= 0.0 &&
                 options.hotspot_fraction <= 1.0);
      std::vector<NodeId> pool(n);
      std::iota(pool.begin(), pool.end(), NodeId{0});
      rng.shuffle(pool.begin(), pool.end());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const bool hot = rng.uniform01() < options.hotspot_fraction;
        batch.push_back(Request{sources[i], hot ? NodeId{0} : pool[i]});
      }
      break;
    }
    default:
      for (NodeId src : sources) {
        batch.push_back(Request{src, structured_destination(tree, pattern, src)});
      }
      break;
  }

  if (options.drop_self) {
    std::erase_if(batch, [](const Request& r) { return r.src == r.dst; });
  }
  return batch;
}

}  // namespace ftsched
