// Application-phase workloads: sequences of communication batches.
//
// The paper's motivation is parallel applications setting up long-lived
// connections; a single random permutation is the micro-benchmark, but
// real codes issue STRUCTURED PHASES — an FFT performs log N butterfly
// exchanges, an all-to-all runs N-1 shifted rounds, a stencil repeats
// nearest-neighbor halos. Each phase is one batch of simultaneous circuit
// requests; the scheduler's per-phase ratio (and the slots needed to drain
// a phase, cf. abl_multiround) is what the application experiences.
//
// All phases are permutations or partial permutations (≤ 1 request per
// source and destination), so they compose with every scheduler and with
// the PathVerifier's preconditions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "topology/fat_tree.hpp"
#include "util/rng.hpp"

namespace ftsched {

struct ApplicationPhase {
  std::string label;
  std::vector<Request> requests;
};

/// FFT butterfly: one phase per digit position d; partners exchange by
/// rotating digit d through all non-zero offsets would be all-to-all, so
/// the classic radix-m butterfly phase k pairs node x with the node whose
/// k-th base-m digit is incremented by `offset` (mod m) — (m-1)·l phases
/// of perfect permutations, stressing exactly one tree level at a time.
std::vector<ApplicationPhase> fft_butterfly_phases(const FatTree& tree);

/// All-to-all personalized exchange: N-1 shift rounds (dst = src + k mod N)
/// — every node talks to every other exactly once across the sequence.
/// `rounds` caps the sequence (0 = all N-1).
std::vector<ApplicationPhase> all_to_all_phases(const FatTree& tree,
                                                std::uint64_t rounds = 0);

/// d-dimensional halo exchange: nodes arranged in the densest possible
/// d-dim grid over [0, N); one phase per (dimension, direction) —
/// dst = neighbor at ±1 in that dimension (wrapping). 2·d phases.
std::vector<ApplicationPhase> stencil_phases(const FatTree& tree,
                                             std::uint32_t dimensions);

/// Random bulk-synchronous phases: `count` independent random permutations
/// (the paper's workload, repeated).
std::vector<ApplicationPhase> random_phases(const FatTree& tree,
                                            std::size_t count,
                                            Xoshiro256ss& rng);

}  // namespace ftsched
