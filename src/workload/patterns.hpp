// Traffic pattern generators.
//
// The paper's evaluation uses randomly generated communication permutations
// (100 per test point). Beyond kRandomPermutation, the classic structured
// permutations of the interconnection-network literature are provided for
// the extension benches: they stress specific levels of the tree (digit
// reversal and transpose force traffic through the root; shift keeps it
// low), which is exactly where level-wise and local scheduling differ.
//
// All generators emit at most one request per source PE and — except
// kHotSpot, which deliberately violates it — at most one request per
// destination PE, so leaf channels never conflict and the schedulability
// ratio measures inter-switch contention only, as in the paper.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/request.hpp"
#include "topology/fat_tree.hpp"
#include "util/rng.hpp"

namespace ftsched {

enum class TrafficPattern : std::uint8_t {
  kRandomPermutation,  ///< uniform random permutation of [0, N) (the paper's)
  kDigitReversal,      ///< destination = base-m digit string of source, reversed
  kDigitRotation,      ///< destination = digits rotated one position (shuffle)
  kTranspose,          ///< destination = digit string halves swapped
  kComplement,         ///< destination = N-1-source
  kShift,              ///< destination = (source + N/2) mod N (tornado-like)
  kNeighbor,           ///< pairs (2k, 2k+1) exchange
  kHotSpot,            ///< a fraction of sources all target PE 0
};

std::string_view to_string(TrafficPattern pattern);

struct WorkloadOptions {
  /// Fraction of PEs that issue a request (partial permutation); 1.0 = full.
  double load_factor = 1.0;
  /// kHotSpot only: fraction of the issuing sources aimed at the hot PE.
  double hotspot_fraction = 0.25;
  /// Drop requests whose source equals their destination (fixed points of
  /// the permutation; they are trivially schedulable loopbacks).
  bool drop_self = false;
};

/// Generates one batch for `tree`. Structured (non-random) patterns are
/// deterministic given the tree; the rng only draws which sources
/// participate when load_factor < 1 (and everything, for the random
/// patterns).
std::vector<Request> generate_pattern(const FatTree& tree,
                                      TrafficPattern pattern,
                                      Xoshiro256ss& rng,
                                      const WorkloadOptions& options = {});

/// Convenience: the paper's workload — a full random permutation.
std::vector<Request> random_permutation(std::uint64_t node_count,
                                        Xoshiro256ss& rng);

}  // namespace ftsched
