#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace ftsched {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FT_REQUIRE(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  FT_REQUIRE(column < aligns_.size());
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  FT_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void print_padded(std::ostream& os, const std::string& cell, std::size_t width,
                  TextTable::Align align) {
  const std::string pad(width - cell.size(), ' ');
  if (align == TextTable::Align::kLeft) {
    os << cell << pad;
  } else {
    os << pad << cell;
  }
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  const auto widths = column_widths(headers_, rows_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    print_padded(os, headers_[c], widths[c], aligns_[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      print_padded(os, row[c], widths[c], aligns_[c]);
    }
    os << '\n';
  }
}

void TextTable::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (aligns_[c] == Align::kRight ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

std::string TextTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TextTable::pct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace ftsched
