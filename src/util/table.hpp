// TextTable — aligned console / markdown / CSV table emitter.
//
// The figure benches print the paper's rows; TextTable keeps all of them on
// one rendering path so `bench/fig9*` and EXPERIMENTS.md stay consistent.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ftsched {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  /// `headers` fixes the column count for every subsequent row.
  explicit TextTable(std::vector<std::string> headers);

  /// Per-column alignment; defaults to left for col 0, right otherwise.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with space padding and a separator rule under the header.
  void print(std::ostream& os) const;

  /// GitHub-flavored markdown.
  void print_markdown(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing comma/quote/newline get quoted).
  void print_csv(std::ostream& os) const;

  /// Formats a double with `digits` decimals ("12.34").
  static std::string num(double value, int digits = 2);

  /// Formats a ratio in [0,1] as a percentage ("87.3%").
  static std::string pct(double ratio, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftsched
