#include "util/contracts.hpp"

namespace ftsched::detail {

namespace {

// Plain statics, deliberately unsynchronized: the hook is installed during
// single-threaded setup (CLI flag parsing, test SetUp) and fired on the
// abort path, where taking a lock could deadlock a dying process.
ContractFailureHook g_hook = nullptr;
bool g_running = false;

}  // namespace

ContractFailureHook set_contract_failure_hook(ContractFailureHook hook) {
  ContractFailureHook previous = g_hook;
  g_hook = hook;
  return previous;
}

void run_contract_failure_hook() {
  if (g_hook == nullptr || g_running) return;
  g_running = true;  // a contract failing inside the hook must not recurse
  g_hook();
  g_running = false;
}

}  // namespace ftsched::detail
