#include "util/bitvec.hpp"

#include "util/simd.hpp"

namespace ftsched {

std::size_t BitVec::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += bits::popcount(w);
  return total;
}

bool BitVec::none() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVec::all() const { return count() == size_; }

std::optional<std::size_t> BitVec::find_first() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * kWordBits + bits::find_first_word(words_[wi]);
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> BitVec::find_next(std::size_t from) const {
  if (from >= size_) return std::nullopt;
  std::size_t wi = from / kWordBits;
  // Mask off bits below `from` in the first word, then scan forward.
  std::uint64_t word = words_[wi] & ~bits::low_mask(from % kWordBits);
  while (true) {
    if (word != 0) {
      return wi * kWordBits + bits::find_first_word(word);
    }
    if (++wi >= words_.size()) return std::nullopt;
    word = words_[wi];
  }
}

void BitVec::and_into(const BitVec& a, const BitVec& b) {
  FT_REQUIRE(a.size_ == b.size_);
  size_ = a.size_;
  words_.resize(a.words_.size());
  if (!words_.empty()) {
    simd::ops().and_rows(a.words_.data(), b.words_.data(), words_.data(),
                         words_.size());
  }
  // Both inputs are trimmed, so the AND's slack bits are already zero.
}

std::optional<std::size_t> BitVec::find_first_and(const BitVec& a,
                                                  const BitVec& b) {
  FT_REQUIRE(a.size_ == b.size_);
  for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
    const std::uint64_t word = a.words_[wi] & b.words_[wi];
    if (word != 0) {
      return wi * kWordBits + bits::find_first_word(word);
    }
  }
  return std::nullopt;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

void BitVec::flip() {
  for (auto& w : words_) w = ~w;
  trim();
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(test(i) ? '1' : '0');
  return out;
}

}  // namespace ftsched
