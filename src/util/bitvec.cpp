#include "util/bitvec.hpp"

namespace ftsched {

std::size_t BitVec::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += bits::popcount(w);
  return total;
}

bool BitVec::none() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVec::all() const { return count() == size_; }

std::optional<std::size_t> BitVec::find_first() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * kWordBits + bits::find_first_word(words_[wi]);
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> BitVec::find_next(std::size_t from) const {
  if (from >= size_) return std::nullopt;
  std::size_t wi = from / kWordBits;
  // Mask off bits below `from` in the first word, then scan forward.
  std::uint64_t word = words_[wi] & ~bits::low_mask(from % kWordBits);
  while (true) {
    if (word != 0) {
      return wi * kWordBits + bits::find_first_word(word);
    }
    if (++wi >= words_.size()) return std::nullopt;
    word = words_[wi];
  }
}

BitVec& BitVec::operator&=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  FT_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

void BitVec::flip() {
  for (auto& w : words_) w = ~w;
  trim();
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(test(i) ? '1' : '0');
  return out;
}

}  // namespace ftsched
