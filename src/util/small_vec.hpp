// SmallVec<T, N> — a fixed-capacity inline vector.
//
// Digit strings, port lists and per-level path records in ftsched are tiny
// (a fat tree deeper than 16 levels is beyond any practical machine), so the
// hot data structures never need heap allocation (Core Guidelines Per.14).
// SmallVec stores up to N trivially-copyable elements inline and aborts on
// overflow — capacity is a structural bound, not a tuning knob.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "util/contracts.hpp"

namespace ftsched {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable element types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr SmallVec() = default;

  constexpr SmallVec(std::initializer_list<T> init) {
    FT_REQUIRE(init.size() <= N);
    std::copy(init.begin(), init.end(), data_.begin());
    size_ = init.size();
  }

  /// Constructs a vector of `count` copies of `value`.
  constexpr SmallVec(std::size_t count, const T& value) {
    FT_REQUIRE(count <= N);
    std::fill_n(data_.begin(), count, value);
    size_ = count;
  }

  static constexpr std::size_t capacity() { return N; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](std::size_t i) {
    FT_ASSERT(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    FT_ASSERT(i < size_);
    return data_[i];
  }

  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr void push_back(const T& value) {
    FT_REQUIRE(size_ < N);
    data_[size_++] = value;
  }

  constexpr void pop_back() {
    FT_REQUIRE(size_ > 0);
    --size_;
  }

  constexpr void clear() { size_ = 0; }

  /// Grows or shrinks to `count`; new elements are value-initialized.
  constexpr void resize(std::size_t count) {
    FT_REQUIRE(count <= N);
    for (std::size_t i = size_; i < count; ++i) data_[i] = T{};
    size_ = count;
  }

  constexpr iterator begin() { return data_.data(); }
  constexpr iterator end() { return data_.data() + size_; }
  constexpr const_iterator begin() const { return data_.data(); }
  constexpr const_iterator end() const { return data_.data() + size_; }

  friend constexpr bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace ftsched
