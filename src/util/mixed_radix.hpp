// Mixed-radix positional arithmetic for switch labels.
//
// The paper labels switch SW(h, τ) by the base-w digit string of τ
// (τ = t_{l-2} … t_0). Theorems 1 and 2 are digit manipulations: ascending a
// level replaces the lowest remaining source digit with the chosen up-port
// (σ_{h+1} = s_{l-2} … s_{h+1} P_0 … P_h). For symmetric trees every digit is
// base w; for slimmed trees FT(l, m, w) with m ≠ w the *source* digits are
// base m (positions within a subtree of m children) while the *port* digits
// are base w — a mixed-radix system. MixedRadix captures exactly that.
//
// Digit order convention: index 0 is the LEAST significant digit throughout
// (the paper's t_0), so `decompose(τ)[i]` is the paper's t_i.
#pragma once

#include <cstdint>

#include "util/contracts.hpp"
#include "util/small_vec.hpp"

namespace ftsched {

/// A fat tree deeper than 16 levels with radix >= 2 would exceed 2^16 nodes
/// per the shallowest configuration and 64-bit labels long before; 16 is a
/// structural bound, not a tuning knob.
inline constexpr std::size_t kMaxTreeLevels = 16;

using DigitVec = SmallVec<std::uint32_t, kMaxTreeLevels>;

class MixedRadix {
 public:
  MixedRadix() = default;

  /// `radices[i]` is the radix of digit position i (LSB first). Every radix
  /// must be >= 1 and the total cardinality must fit in 64 bits.
  explicit MixedRadix(const DigitVec& radices) : radices_(radices) {
    std::uint64_t place = 1;
    for (std::size_t i = 0; i < radices_.size(); ++i) {
      FT_REQUIRE(radices_[i] >= 1);
      places_.push_back(place);
      FT_REQUIRE(place <= UINT64_MAX / radices_[i]);
      place *= radices_[i];
    }
    cardinality_ = place;
  }

  /// Uniform base-`base` system with `digit_count` digits.
  static MixedRadix uniform(std::uint32_t base, std::size_t digit_count) {
    FT_REQUIRE(digit_count <= kMaxTreeLevels);
    DigitVec radices;
    for (std::size_t i = 0; i < digit_count; ++i) radices.push_back(base);
    return MixedRadix(radices);
  }

  std::size_t digit_count() const { return radices_.size(); }

  std::uint32_t radix(std::size_t i) const {
    FT_REQUIRE(i < radices_.size());
    return radices_[i];
  }

  /// Number of representable values (product of all radices).
  std::uint64_t cardinality() const { return cardinality_; }

  /// Weight of digit position i: the product of radices below i.
  std::uint64_t place_value(std::size_t i) const {
    FT_REQUIRE(i < places_.size());
    return places_[i];
  }

  /// Splits `value` into digits, LSB first.
  DigitVec decompose(std::uint64_t value) const {
    FT_REQUIRE(value < cardinality_ || digit_count() == 0);
    DigitVec digits;
    for (std::size_t i = 0; i < radices_.size(); ++i) {
      digits.push_back(static_cast<std::uint32_t>(value % radices_[i]));
      value /= radices_[i];
    }
    return digits;
  }

  /// Inverse of decompose. Each digit must be < its radix.
  std::uint64_t compose(const DigitVec& digits) const {
    FT_REQUIRE(digits.size() == radices_.size());
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < digits.size(); ++i) {
      FT_REQUIRE(digits[i] < radices_[i]);
      value += places_[i] * digits[i];
    }
    return value;
  }

  friend bool operator==(const MixedRadix& a, const MixedRadix& b) {
    return a.radices_ == b.radices_;
  }

 private:
  DigitVec radices_;
  SmallVec<std::uint64_t, kMaxTreeLevels> places_;
  std::uint64_t cardinality_ = 1;
};

}  // namespace ftsched
