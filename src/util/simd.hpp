// simd — the dispatch shim for the wavefront scheduler's vector kernels.
//
// The level-wise scheduler's inner operation is AND-two-w-bit-rows +
// find-first-set, repeated once per in-flight request per level. Transposed
// into a wavefront (all live requests' candidate rows gathered into one
// contiguous row-major matrix), that loop becomes three data-parallel
// primitives, and THIS header is the only place in the tree allowed to know
// how they are vectorized:
//
//   and_rows          — elementwise AND over a flat word buffer
//   first_set_select  — per-row find-first-set (optionally from a per-row
//                       round-robin hint, wrapping), -1 when the row is zero
//   popcount_rows     — per-row popcount (rows are trimmed: spare high bits
//                       of the last word are zero, so the count is masked by
//                       construction)
//
// Dispatch is RUNTIME, not compile-time: every kernel exists at three levels
// (scalar / AVX2 / AVX-512), the binary carries all of them, and a process-
// wide level — resolved from the CPU at first use, an FTSCHED_SIMD
// environment override, or an explicit force() from a --simd flag — selects
// the table. All levels compute the same pure function, so results are
// bit-identical BY CONSTRUCTION; the scalar table is the reference the unit
// tests compare the vector tables against, word for word.
//
// ftlint's no-raw-intrinsics rule pins the boundary: <immintrin.h>, __m256i
// and friends may appear only under src/util, so callers can never grow a
// second, untested vector path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ftsched::simd {

/// Dispatch levels, ordered: a level implies every level below it.
enum class Level : std::uint8_t {
  kScalar = 0,  ///< portable reference kernels (any CPU)
  kAvx2 = 1,    ///< 256-bit AND, pshufb-popcount select
  kAvx512 = 2,  ///< 512-bit AND, native vpopcntq select
};

std::string_view to_string(Level level);

/// Parses "scalar" | "avx2" | "avx512" | "auto". "auto" yields the detected
/// level; anything else yields nullopt.
std::optional<Level> parse_level(std::string_view text);

/// Best level this CPU supports (cached after the first call). AVX-512
/// additionally requires the CD and VPOPCNTDQ subsets the select kernel
/// uses; without them detection stops at AVX2.
Level detect();

/// The level ops() currently dispatches to. Resolution order: an explicit
/// force() wins, else the FTSCHED_SIMD environment variable (same grammar
/// as parse_level; unparseable values are ignored), else detect().
Level active();

/// Forces the dispatch level, clamped to detect() — requesting AVX-512 on
/// an AVX2-only box yields AVX2, never an illegal-instruction fault. This
/// is the --simd=LEVEL hook; it applies process-wide.
void force(Level level);

/// Drops any force() override and re-resolves from environment/CPU —
/// --simd=auto, and what tests use to restore the default.
void use_auto();

/// One resolved kernel table. Function pointers, not virtuals: the
/// scheduler grabs the table once per batch and the calls inline into
/// direct jumps with no per-call dispatch branch.
struct Ops {
  Level level;

  /// out[k] = a[k] & b[k] for k < words. `out` may equal `a` or `b`
  /// exactly; partial overlap is undefined.
  void (*and_rows)(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, std::size_t words);

  /// out[r] = index of the lowest set bit of row r (rows + r*row_words),
  /// or -1 when the row is all zero. row_words >= 1.
  void (*first_set_select)(const std::uint64_t* rows, std::size_t n,
                           std::size_t row_words, std::int32_t* out);

  /// Round-robin select: out[r] = lowest set bit at index >= hints[r],
  /// wrapping to the lowest set bit overall when none qualifies, or -1 when
  /// the row is all zero — exactly LinkState::next_available_port(hint)
  /// followed by the first_available_port wrap. hints[r] < row_words*64.
  void (*first_set_select_hint)(const std::uint64_t* rows, std::size_t n,
                                std::size_t row_words,
                                const std::uint32_t* hints, std::int32_t* out);

  /// out[r] = popcount of row r.
  void (*popcount_rows)(const std::uint64_t* rows, std::size_t n,
                        std::size_t row_words, std::uint32_t* out);
};

/// The table for active(). Callers hold the reference at most for one batch
/// (a force() between batches redirects the next call, not in-flight use).
const Ops& ops();

/// The table for an explicit level, clamped to detect() like force(). Unit
/// tests use this to compare levels side by side without global state.
const Ops& ops_for(Level level);

}  // namespace ftsched::simd
