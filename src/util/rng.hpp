// Deterministic random number generation for experiments.
//
// Every randomized experiment in ftsched (permutation draws, random port
// policies) takes an explicit 64-bit seed so each figure is reproducible
// run-to-run and machine-to-machine. The generator is xoshiro256** — fast,
// small state, passes BigCrush — seeded through splitmix64 so that
// low-entropy seeds (0, 1, 2, …) still yield well-mixed streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/contracts.hpp"

namespace ftsched {

/// splitmix64 step; used for seeding and for hashing experiment labels into
/// per-stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x2006'5C06'F47'72EEULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t below(std::uint64_t bound) {
    FT_REQUIRE(bound > 0);
    // Fast path for power-of-two bounds.
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    FT_REQUIRE(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = below(i);
      using std::swap;
      swap(first[static_cast<std::ptrdiff_t>(i - 1)],
           first[static_cast<std::ptrdiff_t>(j)]);
    }
  }

  /// Derives an independent child stream; `salt` distinguishes siblings.
  Xoshiro256ss fork(std::uint64_t salt) {
    std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Xoshiro256ss(splitmix64(sm));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ftsched
