// Result<T> / Status — expected-failure channel for the public API.
//
// Recoverable failures (invalid tree parameters, malformed traces, requests
// that cannot be scheduled) are values, not exceptions: library functions
// return Result<T> or Status and callers branch on ok(). Contract violations
// (programming errors) go through FT_REQUIRE/FT_ASSERT instead and abort.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/contracts.hpp"

namespace ftsched {

class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }

  /// Failure description; empty string when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  std::optional<std::string> message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    FT_REQUIRE(!status_.ok());  // a success Status must carry a T
  }

  static Result error(std::string message) {
    return Result(Status::error(std::move(message)));
  }

  bool ok() const { return value_.has_value(); }

  const T& value() const& {
    FT_REQUIRE(ok());
    return *value_;
  }
  T& value() & {
    FT_REQUIRE(ok());
    return *value_;
  }
  T&& value() && {
    FT_REQUIRE(ok());
    return std::move(*value_);
  }

  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ftsched
