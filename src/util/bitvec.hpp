// BitVec — a dynamic bit vector tuned for the level-wise scheduler.
//
// The scheduler's inner loop is: AND the w-bit Ulink row of the source-side
// switch with the w-bit Dlink row of the destination-side switch and select
// the first set bit (paper Fig. 7, line 3-5). BitVec therefore provides
// word-wise AND into a destination, find-first-set, and popcount, all over a
// flat uint64_t buffer (Core Guidelines Per.16/19: compact, predictable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace ftsched {

class BitVec {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitVec() = default;

  /// Creates a vector of `size` bits, all set to `value`.
  explicit BitVec(std::size_t size, bool value = false) { assign(size, value); }

  void assign(std::size_t size, bool value) {
    size_ = size;
    words_.assign(word_count(size), value ? ~std::uint64_t{0} : 0);
    trim();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t i) const {
    FT_ASSERT(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i, bool value = true) {
    FT_ASSERT(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  void reset(std::size_t i) { set(i, false); }

  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  void reset_all() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const;

  /// True if no bit is set.
  bool none() const;

  /// True if every bit is set.
  bool all() const;

  /// Index of the lowest set bit, or nullopt if none.
  std::optional<std::size_t> find_first() const;

  /// Index of the lowest set bit at position >= from, or nullopt.
  std::optional<std::size_t> find_next(std::size_t from) const;

  /// this = a & b, word-wise through the simd dispatch shim — the bulk form
  /// for callers that re-evaluate an AND every round and want neither the
  /// temporary of operator& nor the load-modify of operator&=. Sizes of `a`
  /// and `b` must match; this vector is resized to fit.
  void and_into(const BitVec& a, const BitVec& b);

  /// Index of the lowest set bit of (a & b) without materializing the AND;
  /// nullopt when the intersection is empty. Sizes must match. This is the
  /// scheduler's AND+first-fit probe as one scan with early exit.
  static std::optional<std::size_t> find_first_and(const BitVec& a,
                                                   const BitVec& b);

  /// In-place AND with `other`. Sizes must match.
  BitVec& operator&=(const BitVec& other);
  /// In-place OR with `other`. Sizes must match.
  BitVec& operator|=(const BitVec& other);
  /// In-place XOR with `other`. Sizes must match.
  BitVec& operator^=(const BitVec& other);
  /// Flips every bit.
  void flip();

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Renders as "1011…" with bit 0 leftmost (port order used in the paper).
  std::string to_string() const;

  /// Raw word storage (read-only); used by LinkState's flat-matrix variant.
  const std::vector<std::uint64_t>& words() const { return words_; }

  static std::size_t word_count(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

 private:
  // Clears the unused high bits of the last word so count()/none() stay exact.
  void trim() {
    const std::size_t rem = size_ % kWordBits;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << rem) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Free-function helpers over raw 64-bit words; these are the primitives the
/// flat link-state matrix and the hardware model share with BitVec.
namespace bits {

/// Index of lowest set bit; precondition: word != 0.
inline std::size_t find_first_word(std::uint64_t word) {
  FT_ASSERT(word != 0);
  return static_cast<std::size_t>(__builtin_ctzll(word));
}

/// Mask with the lowest `n` bits set (n <= 64).
inline std::uint64_t low_mask(std::size_t n) {
  FT_ASSERT(n <= 64);
  return n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

inline std::size_t popcount(std::uint64_t word) {
  return static_cast<std::size_t>(__builtin_popcountll(word));
}

}  // namespace bits

}  // namespace ftsched
