// Contract-checking macros used across ftsched.
//
// FT_REQUIRE  — precondition on public API arguments; always checked.
// FT_ASSERT   — internal invariant; checked unless NDEBUG.
// FT_UNREACHABLE — marks provably dead control flow.
//
// Violations abort with a message locating the failed contract. Expected,
// recoverable failures (bad user configuration, unschedulable requests) are
// never expressed through these macros — they travel through
// ftsched::Result / status codes instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftsched::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "ftsched: %s failed: %s (%s:%d)\n", kind, cond, file,
               line);
  std::abort();
}

[[noreturn]] inline void contract_failure_msg(const char* kind,
                                              const char* cond,
                                              const char* msg,
                                              const char* file, int line) {
  std::fprintf(stderr, "ftsched: %s failed: %s — %s (%s:%d)\n", kind, cond,
               msg, file, line);
  std::abort();
}

}  // namespace ftsched::detail

#define FT_REQUIRE(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ftsched::detail::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__);                      \
    }                                                                     \
  } while (false)

// Precondition with a runtime-formatted diagnostic (a Status message, a
// scheduler name); `msg` must be a const char* that outlives the call.
#define FT_REQUIRE_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ftsched::detail::contract_failure_msg("precondition", #cond, (msg), \
                                              __FILE__, __LINE__);         \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
// The condition stays in an unevaluated operand: it is still parsed and
// type-checked (and everything it names counts as used, so release builds
// get no unused-variable/unused-capture warnings), but generates no code.
#define FT_ASSERT(cond)                 \
  do {                                  \
    (void)sizeof((cond) ? true : false); \
  } while (false)
#else
#define FT_ASSERT(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ftsched::detail::contract_failure("assertion", #cond, __FILE__,      \
                                          __LINE__);                         \
    }                                                                        \
  } while (false)
#endif

#define FT_UNREACHABLE()                                                   \
  ::ftsched::detail::contract_failure("unreachable code reached", "", \
                                      __FILE__, __LINE__)
