// Contract-checking macros used across ftsched.
//
// FT_REQUIRE  — precondition on public API arguments; always checked.
// FT_ASSERT   — internal invariant; checked unless NDEBUG.
// FT_UNREACHABLE — marks provably dead control flow.
//
// Violations abort with a message locating the failed contract. Expected,
// recoverable failures (bad user configuration, unschedulable requests) are
// never expressed through these macros — they travel through
// ftsched::Result / status codes instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftsched::detail {

/// Process-wide last-gasp callback, invoked (at most once) after a contract
/// failure is reported and before abort(). The observability layer uses it
/// to drain the flight recorder into a post-mortem dump; anything else it
/// does must be safe on a dying process (no locks, no allocation-heavy
/// work). Null disables.
using ContractFailureHook = void (*)();

/// Installs `hook`, returning the previously installed one (null if none).
ContractFailureHook set_contract_failure_hook(ContractFailureHook hook);

/// Runs the installed hook once; reentrant calls (a contract failing inside
/// the hook itself) are no-ops so the abort still happens.
void run_contract_failure_hook();

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "ftsched: %s failed: %s (%s:%d)\n", kind, cond, file,
               line);
  run_contract_failure_hook();
  std::abort();
}

[[noreturn]] inline void contract_failure_msg(const char* kind,
                                              const char* cond,
                                              const char* msg,
                                              const char* file, int line) {
  std::fprintf(stderr, "ftsched: %s failed: %s — %s (%s:%d)\n", kind, cond,
               msg, file, line);
  run_contract_failure_hook();
  std::abort();
}

}  // namespace ftsched::detail

#define FT_REQUIRE(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ftsched::detail::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__);                      \
    }                                                                     \
  } while (false)

// Precondition with a runtime-formatted diagnostic (a Status message, a
// scheduler name); `msg` must be a const char* that outlives the call.
#define FT_REQUIRE_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ftsched::detail::contract_failure_msg("precondition", #cond, (msg), \
                                              __FILE__, __LINE__);         \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
// The condition stays in an unevaluated operand: it is still parsed and
// type-checked (and everything it names counts as used, so release builds
// get no unused-variable/unused-capture warnings), but generates no code.
#define FT_ASSERT(cond)                 \
  do {                                  \
    (void)sizeof((cond) ? true : false); \
  } while (false)
#else
#define FT_ASSERT(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ftsched::detail::contract_failure("assertion", #cond, __FILE__,      \
                                          __LINE__);                         \
    }                                                                        \
  } while (false)
#endif

#define FT_UNREACHABLE()                                                   \
  ::ftsched::detail::contract_failure("unreachable code reached", "", \
                                      __FILE__, __LINE__)

// --- Lock-discipline annotations --------------------------------------------
// Thin wrappers over Clang's thread-safety attributes; they compile to
// nothing under other compilers. The contract they express is static: which
// mutex guards which member, which capability a function requires, and the
// acquisition order between mutexes. Two enforcement layers read them:
//   * ftlint's mutex-guarded-by rule requires every mutex member in src/ to
//     appear in at least one FT_GUARDED_BY/FT_REQUIRES association;
//   * the `thread-safety` CMake preset (Clang) compiles with
//     -Werror=thread-safety, so a guarded member touched without its lock is
//     a build failure.
// src/exec is the only subsystem with real concurrency (ftlint's
// no-raw-thread rule); it wraps std::mutex in an annotated capability type —
// see src/exec/sync.hpp.

#if defined(__clang__)
#define FT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FT_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (Clang: `capability`).
#define FT_CAPABILITY(x) FT_THREAD_ANNOTATION(capability(x))
/// Marks an RAII guard whose constructor acquires and destructor releases.
#define FT_SCOPED_CAPABILITY FT_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read/written while holding `x`.
#define FT_GUARDED_BY(x) FT_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is guarded by `x`.
#define FT_PT_GUARDED_BY(x) FT_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the listed capabilities.
#define FT_REQUIRES(...) FT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define FT_ACQUIRE(...) FT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define FT_RELEASE(...) FT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Declares lock-ordering: this mutex is acquired before the listed ones.
#define FT_ACQUIRED_BEFORE(...) FT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Declares lock-ordering: this mutex is acquired after the listed ones.
#define FT_ACQUIRED_AFTER(...) FT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function must NOT be called while holding the listed capabilities.
#define FT_EXCLUDES(...) FT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; justify in a comment.
#define FT_NO_THREAD_SAFETY_ANALYSIS FT_THREAD_ANNOTATION(no_thread_safety_analysis)
