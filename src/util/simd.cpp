#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "util/bitvec.hpp"
#include "util/contracts.hpp"

// The one translation unit allowed to touch raw intrinsics (ftlint rule
// no-raw-intrinsics). Vector kernels are compiled with function-level
// `target` attributes, so the file builds on any x86-64 toolchain and the
// binary runs on any CPU — a kernel is only ever CALLED after
// __builtin_cpu_supports confirmed its ISA.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FTSCHED_SIMD_X86 1
#include <immintrin.h>
#else
#define FTSCHED_SIMD_X86 0
#endif

namespace ftsched::simd {
namespace {

// --- Scalar reference kernels -----------------------------------------------
// Ground truth: the vector kernels below compute exactly these functions.

void scalar_and_rows(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* out, std::size_t words) {
  for (std::size_t k = 0; k < words; ++k) {
    out[k] = a[k] & b[k];
  }
}

std::int32_t row_first_set(const std::uint64_t* row, std::size_t row_words) {
  for (std::size_t wi = 0; wi < row_words; ++wi) {
    if (row[wi] != 0) {
      return static_cast<std::int32_t>(wi * 64 + bits::find_first_word(row[wi]));
    }
  }
  return -1;
}

// next_available_port(hint) then wrap: first set bit >= hint, else first set
// bit anywhere (which is necessarily < hint), else -1.
std::int32_t row_first_set_from(const std::uint64_t* row,
                                std::size_t row_words, std::uint32_t hint) {
  const std::size_t start = hint / 64;
  FT_ASSERT(start < row_words);
  const std::uint64_t head = row[start] & ~bits::low_mask(hint % 64);
  if (head != 0) {
    return static_cast<std::int32_t>(start * 64 + bits::find_first_word(head));
  }
  for (std::size_t wi = start + 1; wi < row_words; ++wi) {
    if (row[wi] != 0) {
      return static_cast<std::int32_t>(wi * 64 + bits::find_first_word(row[wi]));
    }
  }
  return row_first_set(row, row_words);
}

void scalar_first_set_select(const std::uint64_t* rows, std::size_t n,
                             std::size_t row_words, std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = row_first_set(rows + r * row_words, row_words);
  }
}

void scalar_first_set_select_hint(const std::uint64_t* rows, std::size_t n,
                                  std::size_t row_words,
                                  const std::uint32_t* hints,
                                  std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = row_first_set_from(rows + r * row_words, row_words, hints[r]);
  }
}

void scalar_popcount_rows(const std::uint64_t* rows, std::size_t n,
                          std::size_t row_words, std::uint32_t* out) {
  FT_ASSERT(row_words >= 1);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint64_t* row = rows + r * row_words;
    std::size_t count = 0;
    for (std::size_t wi = 0; wi < row_words; ++wi) {
      count += bits::popcount(row[wi]);
    }
    out[r] = static_cast<std::uint32_t>(count);
  }
}

#if FTSCHED_SIMD_X86

// --- AVX2 kernels -------------------------------------------------------------
// Select/popcount vectorize ACROSS rows, four single-word rows per 256-bit
// lane-set; multi-word rows (w > 64) take the scalar path inside the same
// entry point. Find-first-set has no AVX2 instruction, so it is computed as
// popcount((v & -v) - 1) with Mula's pshufb nibble popcount: an all-zero row
// yields (0 - 1) = ~0 → popcount 64, which the store loop maps to -1.

__attribute__((target("avx2"))) inline __m256i popcount_epi64_avx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline __m256i first_set_epi64_avx2(__m256i v) {
  const __m256i lowest =
      _mm256_and_si256(v, _mm256_sub_epi64(_mm256_setzero_si256(), v));
  return popcount_epi64_avx2(
      _mm256_sub_epi64(lowest, _mm256_set1_epi64x(1)));
}

__attribute__((target("avx2"))) void avx2_and_rows(const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::uint64_t* out,
                                                   std::size_t words) {
  std::size_t k = 0;
  for (; k + 4 <= words; k += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm256_and_si256(va, vb));
  }
  for (; k < words; ++k) {
    out[k] = a[k] & b[k];
  }
}

__attribute__((target("avx2"))) void avx2_first_set_select(
    const std::uint64_t* rows, std::size_t n, std::size_t row_words,
    std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_first_set_select(rows, n, row_words, out);
    return;
  }
  std::size_t r = 0;
  alignas(32) std::uint64_t tmp[4];
  for (; r + 4 <= n; r += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       first_set_epi64_avx2(v));
    for (std::size_t k = 0; k < 4; ++k) {
      const auto fs = static_cast<std::int32_t>(tmp[k]);
      out[r + k] = fs == 64 ? -1 : fs;
    }
  }
  for (; r < n; ++r) {
    out[r] = row_first_set(rows + r, 1);
  }
}

__attribute__((target("avx2"))) void avx2_first_set_select_hint(
    const std::uint64_t* rows, std::size_t n, std::size_t row_words,
    const std::uint32_t* hints, std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_first_set_select_hint(rows, n, row_words, hints, out);
    return;
  }
  std::size_t r = 0;
  alignas(32) std::uint64_t tmp[4];
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; r + 4 <= n; r += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
    const __m256i hint = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hints + r)));
    // Bits >= hint; hint < 64 here (row_words == 1), so sllv never saturates.
    const __m256i masked = _mm256_and_si256(v, _mm256_sllv_epi64(ones, hint));
    const __m256i fs_masked = first_set_epi64_avx2(masked);
    const __m256i fs_all = first_set_epi64_avx2(v);
    const __m256i wrap =
        _mm256_cmpeq_epi64(masked, _mm256_setzero_si256());
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       _mm256_blendv_epi8(fs_masked, fs_all, wrap));
    for (std::size_t k = 0; k < 4; ++k) {
      const auto fs = static_cast<std::int32_t>(tmp[k]);
      out[r + k] = fs == 64 ? -1 : fs;
    }
  }
  for (; r < n; ++r) {
    out[r] = row_first_set_from(rows + r, 1, hints[r]);
  }
}

__attribute__((target("avx2"))) void avx2_popcount_rows(
    const std::uint64_t* rows, std::size_t n, std::size_t row_words,
    std::uint32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_popcount_rows(rows, n, row_words, out);
    return;
  }
  std::size_t r = 0;
  alignas(32) std::uint64_t tmp[4];
  for (; r + 4 <= n; r += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), popcount_epi64_avx2(v));
    for (std::size_t k = 0; k < 4; ++k) {
      out[r + k] = static_cast<std::uint32_t>(tmp[k]);
    }
  }
  for (; r < n; ++r) {
    out[r] = static_cast<std::uint32_t>(bits::popcount(rows[r]));
  }
}

// --- AVX-512 kernels ----------------------------------------------------------
// Same shapes, eight rows per vector, native vpopcntq instead of the pshufb
// emulation. Detection requires f+cd+vpopcntdq together (simd.hpp).

// GCC's avx512fintrin.h models _mm512_undefined_pd() as a self-initialized
// local, which -Wmaybe-uninitialized flags when intrinsics inline into our
// kernels. Header artifact, not our data flow.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define FTSCHED_AVX512_TARGET \
  __attribute__((target("avx512f,avx512cd,avx512vpopcntdq")))

FTSCHED_AVX512_TARGET inline __m512i first_set_epi64_avx512(__m512i v) {
  const __m512i lowest =
      _mm512_and_si512(v, _mm512_sub_epi64(_mm512_setzero_si512(), v));
  return _mm512_popcnt_epi64(
      _mm512_sub_epi64(lowest, _mm512_set1_epi64(1)));
}

FTSCHED_AVX512_TARGET void avx512_and_rows(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::uint64_t* out,
                                           std::size_t words) {
  std::size_t k = 0;
  for (; k + 8 <= words; k += 8) {
    const __m512i va = _mm512_loadu_si512(a + k);
    const __m512i vb = _mm512_loadu_si512(b + k);
    _mm512_storeu_si512(out + k, _mm512_and_si512(va, vb));
  }
  for (; k < words; ++k) {
    out[k] = a[k] & b[k];
  }
}

FTSCHED_AVX512_TARGET void avx512_first_set_select(const std::uint64_t* rows,
                                                   std::size_t n,
                                                   std::size_t row_words,
                                                   std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_first_set_select(rows, n, row_words, out);
    return;
  }
  std::size_t r = 0;
  alignas(64) std::uint64_t tmp[8];
  for (; r + 8 <= n; r += 8) {
    const __m512i v = _mm512_loadu_si512(rows + r);
    _mm512_store_si512(tmp, first_set_epi64_avx512(v));
    for (std::size_t k = 0; k < 8; ++k) {
      const auto fs = static_cast<std::int32_t>(tmp[k]);
      out[r + k] = fs == 64 ? -1 : fs;
    }
  }
  for (; r < n; ++r) {
    out[r] = row_first_set(rows + r, 1);
  }
}

FTSCHED_AVX512_TARGET void avx512_first_set_select_hint(
    const std::uint64_t* rows, std::size_t n, std::size_t row_words,
    const std::uint32_t* hints, std::int32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_first_set_select_hint(rows, n, row_words, hints, out);
    return;
  }
  std::size_t r = 0;
  alignas(64) std::uint64_t tmp[8];
  const __m512i ones = _mm512_set1_epi64(-1);
  for (; r + 8 <= n; r += 8) {
    const __m512i v = _mm512_loadu_si512(rows + r);
    const __m512i hint = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hints + r)));
    const __m512i masked = _mm512_and_si512(v, _mm512_sllv_epi64(ones, hint));
    const __mmask8 has_masked =
        _mm512_cmpneq_epi64_mask(masked, _mm512_setzero_si512());
    const __m512i fs = _mm512_mask_blend_epi64(
        has_masked, first_set_epi64_avx512(v), first_set_epi64_avx512(masked));
    _mm512_store_si512(tmp, fs);
    for (std::size_t k = 0; k < 8; ++k) {
      const auto pick = static_cast<std::int32_t>(tmp[k]);
      out[r + k] = pick == 64 ? -1 : pick;
    }
  }
  for (; r < n; ++r) {
    out[r] = row_first_set_from(rows + r, 1, hints[r]);
  }
}

FTSCHED_AVX512_TARGET void avx512_popcount_rows(const std::uint64_t* rows,
                                                std::size_t n,
                                                std::size_t row_words,
                                                std::uint32_t* out) {
  FT_ASSERT(row_words >= 1);
  if (row_words != 1) {
    scalar_popcount_rows(rows, n, row_words, out);
    return;
  }
  std::size_t r = 0;
  alignas(64) std::uint64_t tmp[8];
  for (; r + 8 <= n; r += 8) {
    const __m512i v = _mm512_loadu_si512(rows + r);
    _mm512_store_si512(tmp, _mm512_popcnt_epi64(v));
    for (std::size_t k = 0; k < 8; ++k) {
      out[r + k] = static_cast<std::uint32_t>(tmp[k]);
    }
  }
  for (; r < n; ++r) {
    out[r] = static_cast<std::uint32_t>(bits::popcount(rows[r]));
  }
}

#undef FTSCHED_AVX512_TARGET

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // FTSCHED_SIMD_X86

// --- Dispatch tables ----------------------------------------------------------

constexpr Ops kScalarOps{Level::kScalar, &scalar_and_rows,
                         &scalar_first_set_select, &scalar_first_set_select_hint,
                         &scalar_popcount_rows};

#if FTSCHED_SIMD_X86
constexpr Ops kAvx2Ops{Level::kAvx2, &avx2_and_rows, &avx2_first_set_select,
                       &avx2_first_set_select_hint, &avx2_popcount_rows};

constexpr Ops kAvx512Ops{Level::kAvx512, &avx512_and_rows,
                         &avx512_first_set_select, &avx512_first_set_select_hint,
                         &avx512_popcount_rows};
#endif

Level detect_uncached() {
#if FTSCHED_SIMD_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512cd") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level clamp_to_cpu(Level level) {
  const Level best = detect();
  return static_cast<std::uint8_t>(level) <= static_cast<std::uint8_t>(best)
             ? level
             : best;
}

Level env_or_detected() {
  if (const char* env = std::getenv("FTSCHED_SIMD")) {
    if (const auto parsed = parse_level(env)) {
      return clamp_to_cpu(*parsed);
    }
  }
  return detect();
}

// -1 = no force() override (resolve from env/CPU). Relaxed atomics: the
// override is set from flag parsing before batches run; readers only need a
// torn-free load, not ordering.
std::atomic<int> g_forced{-1};

}  // namespace

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  FT_UNREACHABLE();
}

std::optional<Level> parse_level(std::string_view text) {
  if (text == "scalar") return Level::kScalar;
  if (text == "avx2") return Level::kAvx2;
  if (text == "avx512") return Level::kAvx512;
  if (text == "auto") return detect();
  return std::nullopt;
}

Level detect() {
  static const Level cached = detect_uncached();
  return cached;
}

Level active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Level>(forced);
  }
  static const Level resolved = env_or_detected();
  return resolved;
}

void force(Level level) {
  g_forced.store(static_cast<int>(clamp_to_cpu(level)),
                 std::memory_order_relaxed);
}

void use_auto() { g_forced.store(-1, std::memory_order_relaxed); }

const Ops& ops_for(Level level) {
  switch (clamp_to_cpu(level)) {
    case Level::kScalar:
      return kScalarOps;
#if FTSCHED_SIMD_X86
    case Level::kAvx2:
      return kAvx2Ops;
    case Level::kAvx512:
      return kAvx512Ops;
#else
    case Level::kAvx2:
    case Level::kAvx512:
      break;  // clamp_to_cpu never yields these without x86 support
#endif
  }
  FT_UNREACHABLE();
}

const Ops& ops() { return ops_for(active()); }

}  // namespace ftsched::simd
