// Ablation: rounds to drain a permutation. Circuit scheduling is time-
// slotted: each slot, the scheduler grants what it can, granted circuits
// transmit and release, and the rejects retry next slot. Fewer slots =
// higher delivered bandwidth; this turns the schedulability ratio into the
// execution-time penalty the paper's introduction warns about.
#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

namespace {

std::uint64_t rounds_to_drain(const FatTree& tree, Scheduler& scheduler,
                              std::vector<Request> pending, LinkState& state) {
  std::uint64_t rounds = 0;
  while (!pending.empty()) {
    ++rounds;
    FT_REQUIRE(rounds < 1000);  // a correct scheduler always progresses
    state.reset();
    const ScheduleResult result = scheduler.schedule(tree, pending, state);
    std::vector<Request> next;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!result.outcomes[i].granted) next.push_back(pending[i]);
    }
    FT_REQUIRE(next.size() < pending.size());  // progress every slot
    pending = std::move(next);
  }
  return rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;

  std::cout << "Ablation: time slots needed to deliver one full permutation "
               "(" << reps << " reps)\n\n";

  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  TextTable table({"shape", "scheduler", "rounds avg", "rounds max"});
  for (const Shape& shape : {Shape{2, 16}, Shape{3, 8}, Shape{4, 5}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const char* name : {"levelwise", "local-random", "local"}) {
      auto scheduler = make_scheduler(name, 11).value();
      LinkState state(tree);
      Xoshiro256ss rng(17);
      std::vector<double> rounds;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        scheduler->reseed(1000 + rep);
        rounds.push_back(static_cast<double>(rounds_to_drain(
            tree, *scheduler, random_permutation(tree.node_count(), rng),
            state)));
      }
      const Summary summary = Summary::from(rounds);
      table.add_row({"FT(" + std::to_string(shape.levels) + "," +
                         std::to_string(shape.w) + ")",
                     name, TextTable::num(summary.mean, 2),
                     TextTable::num(summary.max, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: a ~30-point schedulability gap compounds into "
               "roughly an\nextra slot (or more) per permutation for the "
               "local scheduler — this is\nthe bandwidth-utilization penalty "
               "quantified.\n";
  return 0;
}
