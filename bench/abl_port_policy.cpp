// Ablation: port-selection policy. The paper's hardware fixes "select the
// first available port" (a priority selector); this sweep quantifies what
// that choice costs or buys against random and round-robin selection, for
// both the level-wise scheduler and the local baseline, plus the
// near-optimal matching reference on two-level trees.
#include <cstdlib>
#include <iostream>

#include "stats/runner.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: port-selection policy "
               "(random permutations, " << reps << " reps)\n\n";

  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  const Shape shapes[] = {{2, 16}, {3, 8}, {4, 5}};
  const char* schedulers[] = {"levelwise", "levelwise-random", "levelwise-rr",
                              "local", "local-random", "local-rr"};

  TextTable table({"shape", "scheduler", "schedulability"});
  for (const Shape& shape : shapes) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const char* name : schedulers) {
      ExperimentConfig config;
      config.scheduler = name;
      config.repetitions = reps;
      const ExperimentPoint point = run_experiment(tree, config);
      table.add_row({"FT(" + std::to_string(shape.levels) + "," +
                         std::to_string(shape.w) + ")",
                     name, point.schedulability.ratio_string()});
    }
    if (shape.levels == 2) {
      ExperimentConfig config;
      config.scheduler = "matching2";
      config.repetitions = reps;
      const ExperimentPoint point = run_experiment(tree, config);
      table.add_row({"FT(2," + std::to_string(shape.w) + ")",
                     "matching2 (reference)",
                     point.schedulability.ratio_string()});
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: the policy barely moves the level-wise scheduler "
               "(the AND row\nalready encodes both sides), but moves the "
               "local baseline a lot — greedy\nherds requests onto low ports "
               "and collides them downstream.\n";
  return 0;
}
