// Hardware resource footprint of the centralized scheduler for every
// configuration in the paper's evaluation (first-order Stratix-II-class
// model: M4K availability RAMs, ALUT heuristics for the per-block logic;
// see src/hw/resources.hpp for the model's assumptions). Complements
// Table 1: timing said the scheduler is fast; this says it is small.
#include <iostream>

#include "hw/resources.hpp"
#include "hw/timing_model.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main() {
  std::cout << "Hardware resource estimate (paper's FPGA architecture)\n\n";

  struct Config {
    std::uint32_t levels;
    std::uint32_t w;
  };
  const Config configs[] = {{2, 8},  {2, 16}, {2, 32}, {2, 48}, {2, 64},
                            {3, 4},  {3, 6},  {3, 8},  {3, 12}, {3, 16},
                            {4, 3},  {4, 4},  {4, 5},  {4, 6},  {4, 7}};

  const TimingModel timing;
  TextTable table({"shape", "nodes", "blocks", "mem bits", "M4K", "ALUTs",
                   "registers", "Fmax (MHz)"});
  for (const Config& c : configs) {
    const FatTree tree = FatTree::symmetric(c.levels, c.w);
    const ResourceEstimate est = estimate_resources(tree);
    table.add_row({"FT(" + std::to_string(c.levels) + "," +
                       std::to_string(c.w) + ")",
                   std::to_string(tree.node_count()),
                   std::to_string(est.pipeline_stages),
                   std::to_string(est.memory_bits),
                   std::to_string(est.m4k_blocks), std::to_string(est.aluts),
                   std::to_string(est.registers),
                   TextTable::num(1000.0 / timing.cycle_ns(c.w), 0)});
  }
  table.print(std::cout);
  std::cout << "\nEven the largest paper configuration (4096 nodes) needs "
               "only a few\nkilobits of availability RAM per block and a few "
               "hundred ALUTs — the\nscheduler is a corner of a mid-2000s "
               "FPGA, as §6 implies.\n";
  return 0;
}
