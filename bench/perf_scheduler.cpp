// Throughput microbenchmarks (google-benchmark): how fast is the software
// implementation of each scheduler, and do the primitives scale the way the
// complexity claims say (O(l·N) total work for the level-wise scheduler,
// one AND + find-first per request-level)?
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "hw/pipeline.hpp"
#include "stats/runner.hpp"
#include "workload/patterns.hpp"

namespace ftsched {
namespace {

const FatTree& tree_for(std::uint32_t levels, std::uint32_t w) {
  // Benchmarks reuse topologies; cache them keyed by (levels, w).
  static std::map<std::pair<std::uint32_t, std::uint32_t>, FatTree>* cache =
      new std::map<std::pair<std::uint32_t, std::uint32_t>, FatTree>();
  auto it = cache->find({levels, w});
  if (it == cache->end()) {
    it = cache->emplace(std::pair{levels, w}, FatTree::symmetric(levels, w))
             .first;
  }
  return it->second;
}

void schedule_benchmark(benchmark::State& state, const char* scheduler_name) {
  const auto levels = static_cast<std::uint32_t>(state.range(0));
  const auto w = static_cast<std::uint32_t>(state.range(1));
  const FatTree& tree = tree_for(levels, w);
  auto scheduler = make_scheduler(scheduler_name, 1).value();
  Xoshiro256ss rng(42);
  const auto batch = random_permutation(tree.node_count(), rng);
  LinkState link_state(tree);
  for (auto _ : state) {
    link_state.reset();
    benchmark::DoNotOptimize(scheduler->schedule(tree, batch, link_state));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["nodes"] = static_cast<double>(tree.node_count());
}

void BM_Levelwise(benchmark::State& state) {
  schedule_benchmark(state, "levelwise");
}
void BM_Local(benchmark::State& state) { schedule_benchmark(state, "local"); }
void BM_Turnback(benchmark::State& state) {
  schedule_benchmark(state, "turnback");
}
void BM_Matching2(benchmark::State& state) {
  schedule_benchmark(state, "matching2");
}

BENCHMARK(BM_Levelwise)
    ->Args({2, 16})
    ->Args({2, 64})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({4, 7});
BENCHMARK(BM_Local)->Args({2, 64})->Args({3, 16})->Args({4, 7});
BENCHMARK(BM_Turnback)->Args({3, 8})->Args({3, 16});
BENCHMARK(BM_Matching2)->Args({2, 16})->Args({2, 64});

// End-to-end experiment engine at varying fan-out widths: the paper grid's
// unit of work (one fig9b point: schedule + verify, 100 permutations) as a
// function of --threads. On a single-core host the >1 widths measure pure
// pool overhead; on a real machine they trace the scaling curve recorded in
// docs/PERFORMANCE.md. Results are bit-identical across widths (tested by
// Runner.* determinism tests), so every width does the same work.
void BM_ExperimentEngine(benchmark::State& state) {
  const FatTree& tree = tree_for(3, 8);
  ExperimentConfig config;
  config.scheduler = "levelwise";
  config.repetitions = 32;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(tree, config));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(config.repetitions * tree.node_count()));
  state.counters["threads"] = static_cast<double>(config.threads);
}
BENCHMARK(BM_ExperimentEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineSchedule(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const FatTree& tree = tree_for(3, w);
  LevelwisePipeline pipeline(tree);
  Xoshiro256ss rng(7);
  const auto batch = random_permutation(tree.node_count(), rng);
  for (auto _ : state) {
    pipeline.reset();
    benchmark::DoNotOptimize(pipeline.schedule(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PipelineSchedule)->Arg(4)->Arg(8)->Arg(16);

void BM_AscendPrimitive(benchmark::State& state) {
  const FatTree& tree = tree_for(4, 7);
  std::uint64_t index = 0;
  std::uint32_t port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.ascend(0, index, port));
    index = (index + 123) % tree.switches_at(0);
    port = (port + 1) % 7;
  }
}
BENCHMARK(BM_AscendPrimitive);

void BM_FirstAvailablePort(benchmark::State& state) {
  const FatTree& tree = tree_for(2, 64);
  LinkState link_state(tree);
  // Half-occupied rows: realistic mid-batch AND work.
  Xoshiro256ss rng(3);
  for (std::uint64_t sw = 0; sw < link_state.rows_at(0); ++sw) {
    for (std::uint32_t p = 0; p < 64; ++p) {
      if (rng.below(2)) link_state.set_ulink(0, sw, p, false);
      if (rng.below(2)) link_state.set_dlink(0, sw, p, false);
    }
  }
  std::uint64_t a = 0;
  std::uint64_t b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(link_state.first_available_port(0, a, b));
    a = (a + 7) % link_state.rows_at(0);
    b = (b + 13) % link_state.rows_at(0);
  }
}
BENCHMARK(BM_FirstAvailablePort);

}  // namespace
}  // namespace ftsched

// Expanded BENCHMARK_MAIN: unless the caller already chose an output file,
// drop the machine-readable BENCH_perf_scheduler.json next to the console
// report, so CI and the perf-regression workflow always get JSON for free.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_perf_scheduler.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
