// Throughput microbenchmarks (google-benchmark): how fast is the software
// implementation of each scheduler, and do the primitives scale the way the
// complexity claims say (O(l·N) total work for the level-wise scheduler,
// one AND + find-first per request-level)?
//
// Extra flags (consumed here, stripped before google-benchmark sees argv):
//   --profile                 after the timed run, replay the BM_Levelwise
//                             and BM_Local grids with the cost profiler
//                             attached, write PROFILE_perf_scheduler.jsonl,
//                             and splice a "profile" block into the JSON
//                             artifact (the input of ftreport --perf).
//   --profile-backend=timer   force the wall-clock fallback backend.
//   --simd=LEVEL              pin the dispatch level (scalar|avx2|avx512|
//                             auto) for every benchmark in the run; the
//                             resolved level is printed so CI harnesses can
//                             tell a genuine AVX2 run from a clamped one.
//   --levelwise-legacy        run BM_Levelwise with the pre-wavefront
//                             request-at-a-time sweep under the same
//                             benchmark names — the baseline side of the
//                             ftreport --min-ratio speedup floor.
// The profiled replay is separate from the timed gbench loops, so
// attribution overhead never pollutes the throughput numbers.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/levelwise_scheduler.hpp"
#include "core/registry.hpp"
#include "fig9_common.hpp"
#include "hw/pipeline.hpp"
#include "stats/runner.hpp"
#include "util/simd.hpp"
#include "workload/patterns.hpp"

namespace ftsched {
namespace {

// --levelwise-legacy pins BM_Levelwise to the pre-wavefront one-request-
// at-a-time sweep (LevelwiseOptions::wavefront = false). The benchmark
// names stay identical, so a legacy run and a default run feed straight
// into the ftreport --min-ratio speedup floor: same binary, same host,
// same workload — the only variable is the wavefront hot path.
bool g_levelwise_legacy = false;

const FatTree& tree_for(std::uint32_t levels, std::uint32_t w) {
  // Benchmarks reuse topologies; cache them keyed by (levels, w).
  static std::map<std::pair<std::uint32_t, std::uint32_t>, FatTree>* cache =
      new std::map<std::pair<std::uint32_t, std::uint32_t>, FatTree>();
  auto it = cache->find({levels, w});
  if (it == cache->end()) {
    it = cache->emplace(std::pair{levels, w}, FatTree::symmetric(levels, w))
             .first;
  }
  return it->second;
}

void schedule_benchmark(benchmark::State& state, const char* scheduler_name) {
  const auto levels = static_cast<std::uint32_t>(state.range(0));
  const auto w = static_cast<std::uint32_t>(state.range(1));
  const FatTree& tree = tree_for(levels, w);
  std::unique_ptr<Scheduler> scheduler;
  if (g_levelwise_legacy && std::string_view(scheduler_name) == "levelwise") {
    LevelwiseOptions options;
    options.seed = 1;
    options.wavefront = false;
    scheduler = std::make_unique<LevelwiseScheduler>(options);
  } else {
    scheduler = make_scheduler(scheduler_name, 1).value();
  }
  Xoshiro256ss rng(42);
  const auto batch = random_permutation(tree.node_count(), rng);
  LinkState link_state(tree);
  for (auto _ : state) {
    link_state.reset();
    benchmark::DoNotOptimize(scheduler->schedule(tree, batch, link_state));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["nodes"] = static_cast<double>(tree.node_count());
}

void BM_Levelwise(benchmark::State& state) {
  schedule_benchmark(state, "levelwise");
}
void BM_Local(benchmark::State& state) { schedule_benchmark(state, "local"); }
void BM_Turnback(benchmark::State& state) {
  schedule_benchmark(state, "turnback");
}
void BM_Matching2(benchmark::State& state) {
  schedule_benchmark(state, "matching2");
}

BENCHMARK(BM_Levelwise)
    ->Args({2, 16})
    ->Args({2, 64})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({4, 7});
BENCHMARK(BM_Local)->Args({2, 64})->Args({3, 16})->Args({4, 7});
BENCHMARK(BM_Turnback)->Args({3, 8})->Args({3, 16});
BENCHMARK(BM_Matching2)->Args({2, 16})->Args({2, 64});

// End-to-end experiment engine at varying fan-out widths: the paper grid's
// unit of work (one fig9b point: schedule + verify, 100 permutations) as a
// function of --threads. On a single-core host the >1 widths measure pure
// pool overhead; on a real machine they trace the scaling curve recorded in
// docs/PERFORMANCE.md. Results are bit-identical across widths (tested by
// Runner.* determinism tests), so every width does the same work.
void BM_ExperimentEngine(benchmark::State& state) {
  const FatTree& tree = tree_for(3, 8);
  ExperimentConfig config;
  config.scheduler = "levelwise";
  config.repetitions = 32;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(tree, config));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(config.repetitions * tree.node_count()));
  state.counters["threads"] = static_cast<double>(config.threads);
}
BENCHMARK(BM_ExperimentEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineSchedule(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const FatTree& tree = tree_for(3, w);
  LevelwisePipeline pipeline(tree);
  Xoshiro256ss rng(7);
  const auto batch = random_permutation(tree.node_count(), rng);
  for (auto _ : state) {
    pipeline.reset();
    benchmark::DoNotOptimize(pipeline.schedule(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PipelineSchedule)->Arg(4)->Arg(8)->Arg(16);

void BM_AscendPrimitive(benchmark::State& state) {
  const FatTree& tree = tree_for(4, 7);
  std::uint64_t index = 0;
  std::uint32_t port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.ascend(0, index, port));
    index = (index + 123) % tree.switches_at(0);
    port = (port + 1) % 7;
  }
}
BENCHMARK(BM_AscendPrimitive);

void BM_FirstAvailablePort(benchmark::State& state) {
  const FatTree& tree = tree_for(2, 64);
  LinkState link_state(tree);
  // Half-occupied rows: realistic mid-batch AND work.
  Xoshiro256ss rng(3);
  for (std::uint64_t sw = 0; sw < link_state.rows_at(0); ++sw) {
    for (std::uint32_t p = 0; p < 64; ++p) {
      if (rng.below(2)) link_state.set_ulink(0, sw, p, false);
      if (rng.below(2)) link_state.set_dlink(0, sw, p, false);
    }
  }
  std::uint64_t a = 0;
  std::uint64_t b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(link_state.first_available_port(0, a, b));
    a = (a + 7) % link_state.rows_at(0);
    b = (b + 13) % link_state.rows_at(0);
  }
}
BENCHMARK(BM_FirstAvailablePort);

// Per-dispatch-level grid points for the wavefront kernels themselves: the
// same AND + first-set-select volume a levelwise batch sweep issues (4096
// single-word rows, half-occupied), once per dispatch level, so a report can
// show the kernel-level speedup next to the end-to-end one. Levels the host
// CPU lacks are skipped, not silently clamped.
void BM_SimdAndSelect(benchmark::State& state) {
  const auto want = static_cast<simd::Level>(state.range(0));
  if (static_cast<int>(simd::detect()) < static_cast<int>(want)) {
    state.SkipWithError("CPU lacks this dispatch level");
    return;
  }
  const simd::Ops& kernels = simd::ops_for(want);
  constexpr std::size_t kRows = 4096;
  std::vector<std::uint64_t> a(kRows);
  std::vector<std::uint64_t> b(kRows);
  std::vector<std::uint64_t> anded(kRows);
  std::vector<std::int32_t> pick(kRows);
  Xoshiro256ss rng(11);
  for (std::size_t r = 0; r < kRows; ++r) {
    a[r] = rng() | rng();  // ~75% dense: realistic early-batch rows
    b[r] = rng() | rng();
  }
  for (auto _ : state) {
    kernels.and_rows(a.data(), b.data(), anded.data(), kRows);
    kernels.first_set_select(anded.data(), kRows, 1, pick.data());
    benchmark::DoNotOptimize(pick.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
  state.SetLabel(std::string(simd::to_string(kernels.level)));
}
BENCHMARK(BM_SimdAndSelect)
    ->Arg(static_cast<int>(ftsched::simd::Level::kScalar))
    ->Arg(static_cast<int>(ftsched::simd::Level::kAvx2))
    ->Arg(static_cast<int>(ftsched::simd::Level::kAvx512));

// Same kernel workload at the ACTIVE dispatch level (whatever --simd=
// resolved to). Unlike BM_SimdAndSelect/<n> the name carries no level
// suffix, so two runs of the binary — one at --simd=scalar, one at
// --simd=auto — produce rows ftreport can pair by name. CI feeds exactly
// that pair into the --min-ratio speedup floor: the vector kernels must
// beat the scalar fallback by >=1.5x on any host that reports AVX2.
void BM_SimdKernels(benchmark::State& state) {
  const simd::Ops& kernels = simd::ops();
  constexpr std::size_t kRows = 4096;
  std::vector<std::uint64_t> a(kRows);
  std::vector<std::uint64_t> b(kRows);
  std::vector<std::uint64_t> anded(kRows);
  std::vector<std::int32_t> pick(kRows);
  Xoshiro256ss rng(11);
  for (std::size_t r = 0; r < kRows; ++r) {
    a[r] = rng() | rng();
    b[r] = rng() | rng();
  }
  for (auto _ : state) {
    kernels.and_rows(a.data(), b.data(), anded.data(), kRows);
    kernels.first_set_select(anded.data(), kRows, 1, pick.data());
    benchmark::DoNotOptimize(pick.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
  state.SetLabel(std::string(simd::to_string(kernels.level)));
}
BENCHMARK(BM_SimdKernels);

// --profile replay: the same workload derivation as schedule_benchmark
// (seed-42 permutation, reset link state per batch) with a ProfileSession
// attached, so the attribution describes exactly the code the timed loops
// measured. Few repetitions suffice: the profiler aggregates per-request
// averages, not wall-time distributions.
constexpr std::size_t kProfileReps = 16;

void profile_grid_point(std::deque<bench::ProfiledPoint>& out,
                        const char* scheduler_name, std::uint32_t levels,
                        std::uint32_t w,
                        obs::PerfCounters::Request request) {
  const FatTree& tree = tree_for(levels, w);
  auto scheduler = make_scheduler(scheduler_name, 1).value();
  Xoshiro256ss rng(42);
  const auto batch = random_permutation(tree.node_count(), rng);
  LinkState link_state(tree);
  bench::ProfiledPoint& pp = out.emplace_back();
  pp.label = std::string(scheduler_name) + "/l" + std::to_string(levels) +
             "w" + std::to_string(w);
  pp.session.set_request(request);
  pp.session.open();
  scheduler->set_profiler(&pp.session);
  for (std::size_t rep = 0; rep < kProfileReps; ++rep) {
    link_state.reset();
    pp.session.begin_batch();
    const ScheduleResult result =
        scheduler->schedule(tree, batch, link_state);
    pp.session.end_batch(result.outcomes.size());
  }
}

std::deque<bench::ProfiledPoint> run_profile_passes(
    obs::PerfCounters::Request request) {
  std::deque<bench::ProfiledPoint> out;
  const std::pair<std::uint32_t, std::uint32_t> levelwise_grid[] = {
      {2, 16}, {2, 64}, {3, 8}, {3, 16}, {4, 7}};
  for (const auto& [levels, w] : levelwise_grid) {
    profile_grid_point(out, "levelwise", levels, w, request);
  }
  const std::pair<std::uint32_t, std::uint32_t> local_grid[] = {
      {2, 64}, {3, 16}, {4, 7}};
  for (const auto& [levels, w] : local_grid) {
    profile_grid_point(out, "local", levels, w, request);
  }
  return out;
}

/// Standalone profile artifact: JSONL v1, same schema the CLI --profile-out
/// writes. ftreport --perf consumes either this file or the embedded block.
void write_profile_jsonl(const std::string& path,
                         const std::deque<bench::ProfiledPoint>& profiled) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return;
  }
  const obs::PerfBackend backend =
      profiled.empty() ? obs::PerfBackend::kTimer
                       : profiled.front().session.backend();
  obs::ProfileSession::write_jsonl_header(os, "perf_scheduler", backend);
  for (const bench::ProfiledPoint& pp : profiled) {
    pp.session.write_jsonl_point(os, pp.label);
  }
  std::cout << "wrote " << path << " (" << profiled.size() << " points, "
            << obs::to_string(backend) << " backend)\n";
}

/// Rewrites the google-benchmark JSON artifact with `,"profile":{...}`
/// spliced in before the document's final `}` — one self-contained file for
/// ftreport, same embedded-block shape as the fig9 benches.
void splice_profile_block(const std::string& path,
                          const std::deque<bench::ProfiledPoint>& profiled) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot reopen " << path << " to embed the profile\n";
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string doc = buffer.str();
  const std::size_t brace = doc.find_last_of('}');
  if (brace == std::string::npos) {
    std::cerr << path << ": no JSON object to embed the profile into\n";
    return;
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    std::cerr << "cannot rewrite " << path << "\n";
    return;
  }
  os << doc.substr(0, brace) << ',';
  bench::write_profile_block(os, profiled);
  os << doc.substr(brace);
  std::cout << "embedded profile block into " << path << "\n";
}

}  // namespace
}  // namespace ftsched

// Expanded BENCHMARK_MAIN: unless the caller already chose an output file,
// drop the machine-readable BENCH_perf_scheduler.json next to the console
// report, so CI and the perf-regression workflow always get JSON for free.
int main(int argc, char** argv) {
  // Our flags first: strip them so google-benchmark never sees them.
  bool profile = false;
  auto request = ftsched::obs::PerfCounters::Request::kAuto;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  std::string out_path = "BENCH_perf_scheduler.json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile-backend=timer") {
      request = ftsched::obs::PerfCounters::Request::kTimer;
    } else if (arg == "--profile-backend=auto") {
      request = ftsched::obs::PerfCounters::Request::kAuto;
    } else if (arg == "--levelwise-legacy") {
      ftsched::g_levelwise_legacy = true;
    } else if (arg.rfind("--simd=", 0) == 0) {
      const std::string level = arg.substr(7);
      if (level == "auto") {
        ftsched::simd::use_auto();
      } else if (const auto parsed = ftsched::simd::parse_level(level)) {
        ftsched::simd::force(*parsed);
      } else {
        std::cerr << "unknown --simd '" << level
                  << "' (scalar|avx2|avx512|auto)\n";
        return 2;
      }
    } else {
      if (arg.rfind("--benchmark_out=", 0) == 0) {
        has_out = true;
        out_path = arg.substr(16);
      } else if (arg.rfind("--benchmark_out", 0) == 0) {
        has_out = true;
      }
      args.push_back(argv[i]);
    }
  }
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  // Resolved (possibly clamped) level, printed for CI skip detection.
  std::cout << "simd: " << ftsched::simd::to_string(ftsched::simd::active())
            << "\n";
  if (ftsched::g_levelwise_legacy) {
    std::cout << "levelwise: legacy (wavefront disabled)\n";
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (profile) {
    const auto profiled = ftsched::run_profile_passes(request);
    ftsched::write_profile_jsonl("PROFILE_perf_scheduler.jsonl", profiled);
    ftsched::splice_profile_block(out_path, profiled);
  }
  return 0;
}
