// Ablation: graceful degradation under cable faults. Failed cables are
// masked as permanently occupied (both directions); schedulers route around
// them through their normal availability logic. Sweep the cable failure
// rate and compare how much schedulability each algorithm retains — global
// information should degrade more gracefully because it sees the damage on
// BOTH sides of every candidate port — and how evenly each policy loads
// the surviving subtree planes (linkstate/imbalance.hpp): the balanced
// policies buy their keep here, steering circuits off the depleted planes.
//
// Usage: abl_faults [reps] [--json[=FILE]]
//
// --json writes BENCH_abl_faults.json: one point per (scheduler, rate) with
// the schedulability summary and the post-batch residual-fabric imbalance
// summaries (imbalance_max_over_mean / imbalance_cov / imbalance_hotspot),
// the same summary shapes the degradation sweep emits.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/registry.hpp"
#include "linkstate/faults.hpp"
#include "linkstate/imbalance.hpp"
#include "obs/env.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

namespace {

struct AblationPoint {
  std::string scheduler;
  double rate = 0.0;
  Summary schedulability;
  Summary imbalance_max_over_mean;
  Summary imbalance_cov;
  Summary imbalance_hotspot;
};

void write_summary(std::ostream& os, const char* name, const Summary& s) {
  os << '"' << name << "\":{\"mean\":" << s.mean << ",\"min\":" << s.min
     << ",\"max\":" << s.max << ",\"stddev\":" << s.stddev << '}';
}

void write_json(const std::string& path, std::size_t reps,
                const std::vector<AblationPoint>& points) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return;
  }
  os << "{\"bench\":\"abl_faults\",\"reps\":" << reps << ",\"env\":";
  obs::write_env_json(os, obs::collect_env());
  os << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const AblationPoint& p = points[i];
    if (i) os << ',';
    os << "\n{\"levels\":3,\"arity\":8,\"fault_rate\":" << p.rate
       << ",\"scheduler\":\"" << obs::json_escape(p.scheduler) << "\",";
    write_summary(os, "schedulability", p.schedulability);
    os << ',';
    write_summary(os, "imbalance_max_over_mean", p.imbalance_max_over_mean);
    os << ',';
    write_summary(os, "imbalance_cov", p.imbalance_cov);
    os << ',';
    write_summary(os, "imbalance_hotspot", p.imbalance_hotspot);
    os << '}';
  }
  os << "\n]}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 40;
  bool json = false;
  std::string json_path = "BENCH_abl_faults.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else {
      reps = static_cast<std::size_t>(std::atoi(arg.c_str()));
    }
  }
  if (reps == 0) reps = 40;

  const FatTree tree = FatTree::symmetric(3, 8);
  std::cout << "Ablation: schedulability vs cable failure rate "
               "(FT(3,8), 512 nodes, " << reps << " reps)\n\n";

  TextTable table({"fault rate", "Global (level-wise)", "Balanced",
                   "Local (random)", "turnback", "hotspot ff/bal",
                   "retained (global)"});
  const std::vector<std::string> schedulers = {
      "levelwise", "levelwise-balanced", "local-random", "turnback"};
  std::vector<AblationPoint> points;
  double baseline_global = 0.0;
  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row{TextTable::pct(rate, 0)};
    double global_mean = 0.0;
    double hotspot_ff = 0.0;
    double hotspot_bal = 0.0;
    for (const std::string& name : schedulers) {
      auto scheduler = make_scheduler(name, 3).value();
      LinkState state(tree);
      std::vector<double> ratios;
      std::vector<double> imb_mom, imb_cov, imb_hot;
      Xoshiro256ss rng(13);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const FaultPlan plan = random_cable_faults(tree, rate, 1000 + rep);
        state.reset();
        apply_faults(state, plan);
        scheduler->reseed(500 + rep);
        const auto batch = random_permutation(tree.node_count(), rng);
        ratios.push_back(
            scheduler->schedule(tree, batch, state).schedulability_ratio());
        // Residual-fabric quality with the batch's circuits still in place.
        const ImbalanceReport imbalance = measure_imbalance(state);
        imb_mom.push_back(imbalance.worst_max_over_mean);
        imb_cov.push_back(imbalance.worst_cov);
        imb_hot.push_back(imbalance.worst_hotspot);
      }
      const Summary summary = Summary::from(ratios);
      AblationPoint point;
      point.scheduler = name;
      point.rate = rate;
      point.schedulability = summary;
      point.imbalance_max_over_mean = Summary::from(imb_mom);
      point.imbalance_cov = Summary::from(imb_cov);
      point.imbalance_hotspot = Summary::from(imb_hot);
      if (name == "levelwise") {
        global_mean = summary.mean;
        hotspot_ff = point.imbalance_hotspot.mean;
      }
      if (name == "levelwise-balanced") {
        hotspot_bal = point.imbalance_hotspot.mean;
      }
      row.push_back(TextTable::pct(summary.mean));
      points.push_back(std::move(point));
    }
    if (rate == 0.0) baseline_global = global_mean;
    row.push_back(TextTable::num(hotspot_ff, 3) + "x/" +
                  TextTable::num(hotspot_bal, 3) + "x");
    row.push_back(TextTable::pct(global_mean / baseline_global));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: the level-wise AND row absorbs faults exactly "
               "like contention;\nno special fault handling exists anywhere "
               "in the scheduler, yet it keeps\nmost of its advantage as the "
               "fabric decays. The balanced policy trades a\nsliver of "
               "schedulability for a much flatter load on the surviving "
               "planes.\n";
  if (json) write_json(json_path, reps, points);
  return 0;
}
