// Ablation: graceful degradation under cable faults. Failed cables are
// masked as permanently occupied (both directions); schedulers route around
// them through their normal availability logic. Sweep the cable failure
// rate and compare how much schedulability each algorithm retains — global
// information should degrade more gracefully because it sees the damage on
// BOTH sides of every candidate port.
#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "linkstate/faults.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;

  const FatTree tree = FatTree::symmetric(3, 8);
  std::cout << "Ablation: schedulability vs cable failure rate "
               "(FT(3,8), 512 nodes, " << reps << " reps)\n\n";

  TextTable table({"fault rate", "Global (level-wise)", "Local (random)",
                   "turnback", "retained (global)"});
  double baseline_global = 0.0;
  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row{TextTable::pct(rate, 0)};
    double global_mean = 0.0;
    for (const char* name : {"levelwise", "local-random", "turnback"}) {
      auto scheduler = make_scheduler(name, 3).value();
      LinkState state(tree);
      std::vector<double> ratios;
      Xoshiro256ss rng(13);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const FaultPlan plan = random_cable_faults(tree, rate, 1000 + rep);
        state.reset();
        apply_faults(state, plan);
        scheduler->reseed(500 + rep);
        const auto batch = random_permutation(tree.node_count(), rng);
        ratios.push_back(
            scheduler->schedule(tree, batch, state).schedulability_ratio());
      }
      const Summary summary = Summary::from(ratios);
      row.push_back(TextTable::pct(summary.mean));
      if (std::string(name) == "levelwise") global_mean = summary.mean;
    }
    if (rate == 0.0) baseline_global = global_mean;
    row.push_back(TextTable::pct(global_mean / baseline_global));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: the level-wise AND row absorbs faults exactly "
               "like contention;\nno special fault handling exists anywhere "
               "in the scheduler, yet it keeps\nmost of its advantage as the "
               "fabric decays.\n";
  return 0;
}
