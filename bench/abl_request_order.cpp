// Ablation: request processing order for the level-wise scheduler.
// Level-major (the paper's pseudo-code and the pipelined hardware) versus
// request-major, and batch order: natural, random-shuffled, and sorted by
// descending common-ancestor level (tallest circuits first — the classic
// "hardest first" heuristic).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/levelwise_scheduler.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

namespace {

enum class BatchOrder { kNatural, kShuffled, kTallestFirst };

std::vector<Request> reorder(const FatTree& tree, std::vector<Request> batch,
                             BatchOrder order, Xoshiro256ss& rng) {
  switch (order) {
    case BatchOrder::kNatural:
      break;
    case BatchOrder::kShuffled:
      rng.shuffle(batch.begin(), batch.end());
      break;
    case BatchOrder::kTallestFirst:
      std::stable_sort(batch.begin(), batch.end(),
                       [&](const Request& a, const Request& b) {
                         return tree.common_ancestor_level(
                                    tree.leaf_switch(a.src).index,
                                    tree.leaf_switch(a.dst).index) >
                                tree.common_ancestor_level(
                                    tree.leaf_switch(b.src).index,
                                    tree.leaf_switch(b.dst).index);
                       });
      break;
  }
  return batch;
}

const char* order_name(BatchOrder order) {
  switch (order) {
    case BatchOrder::kNatural:
      return "natural";
    case BatchOrder::kShuffled:
      return "shuffled";
    case BatchOrder::kTallestFirst:
      return "tallest-first";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: processing order, level-wise scheduler "
            << "(" << reps << " random permutations per cell)\n\n";

  TextTable table({"shape", "algorithm order", "batch order",
                   "schedulability"});
  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  for (const Shape& shape : {Shape{3, 8}, Shape{4, 4}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const auto algo_order : {LevelwiseOptions::Order::kLevelMajor,
                                  LevelwiseOptions::Order::kRequestMajor}) {
      for (const BatchOrder batch_order :
           {BatchOrder::kNatural, BatchOrder::kShuffled,
            BatchOrder::kTallestFirst}) {
        LevelwiseOptions options;
        options.order = algo_order;
        LevelwiseScheduler scheduler(options);
        LinkState state(tree);
        std::vector<double> ratios;
        Xoshiro256ss rng(99);
        for (std::size_t rep = 0; rep < reps; ++rep) {
          auto batch = reorder(
              tree, random_permutation(tree.node_count(), rng), batch_order,
              rng);
          state.reset();
          ratios.push_back(
              scheduler.schedule(tree, batch, state).schedulability_ratio());
        }
        table.add_row(
            {"FT(" + std::to_string(shape.levels) + "," +
                 std::to_string(shape.w) + ")",
             algo_order == LevelwiseOptions::Order::kLevelMajor
                 ? "level-major (paper)"
                 : "request-major",
             order_name(batch_order),
             Summary::from(ratios).ratio_string()});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: request-major order (immediate rollback of each "
               "reject before\nthe next request) edges out the paper's "
               "level-major by under a point on\nsymmetric shapes — and by "
               "several points under heavy oversubscription\n(see "
               "abl_slimmed). Batch order shifts first-fit by a point or two "
               "at\nmost: the algorithm is robust to arrival order.\n";
  return 0;
}
