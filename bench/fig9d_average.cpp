// Figure 9(d): average schedulability — six bars (Global and Local at 2, 3,
// and 4 levels), each the mean over that level count's full size sweep.
// Also prints the §5 headline claims derived from the same data:
//   * improvement > 30% beyond 500 nodes,
//   * level-wise minimum above local maximum,
//   * deviation shrinking with system size.
#include "fig9_common.hpp"

using namespace ftsched;
using namespace ftsched::bench;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;

  struct Family {
    std::uint32_t levels;
    std::vector<std::uint32_t> arities;
  };
  const std::vector<Family> families{
      {2, {8, 16, 32, 48, 64}},
      {3, {4, 6, 8, 12, 16}},
      {4, {3, 4, 5, 6, 7}},
  };

  std::cout << "Figure 9(d): Average Schedulability\n\n";
  TextTable table({"bar", "avg schedulability"});
  std::vector<std::vector<Fig9Row>> all_rows;
  for (const Family& family : families) {
    std::vector<Fig9Row> rows;
    for (std::uint32_t w : family.arities) {
      rows.push_back(run_point(family.levels, w, reps, 2006 + w));
    }
    double global_sum = 0;
    double local_sum = 0;
    for (const Fig9Row& row : rows) {
      global_sum += row.global.schedulability.mean;
      local_sum += row.local_random.schedulability.mean;
    }
    table.add_row({"G " + std::to_string(family.levels) + "-level",
                   TextTable::pct(global_sum /
                                  static_cast<double>(rows.size()))});
    table.add_row({"L " + std::to_string(family.levels) + "-level",
                   TextTable::pct(local_sum /
                                  static_cast<double>(rows.size()))});
    all_rows.push_back(std::move(rows));
  }
  table.print(std::cout);

  std::cout << "\nPaper claims derived from this data:\n";
  bool min_above_max = true;
  bool improvement_over_30 = true;
  for (const auto& rows : all_rows) {
    for (const Fig9Row& row : rows) {
      if (row.global.schedulability.min <= row.local_random.schedulability.max) {
        min_above_max = false;
      }
      if (row.nodes > 500) {
        const double improvement = (row.global.schedulability.mean -
                                    row.local_random.schedulability.mean) /
                                   row.local_random.schedulability.mean;
        if (improvement <= 0.30) improvement_over_30 = false;
      }
    }
  }
  std::cout << "  level-wise min > local max at every point : "
            << (min_above_max ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "  improvement > 30% beyond 500 nodes        : "
            << (improvement_over_30 ? "HOLDS" : "VIOLATED") << "\n";
  for (const auto& rows : all_rows) {
    const Fig9Row& smallest = rows.front();
    const Fig9Row& largest = rows.back();
    const double small_spread = smallest.global.schedulability.max -
                                smallest.global.schedulability.min;
    const double large_spread =
        largest.global.schedulability.max - largest.global.schedulability.min;
    std::cout << "  deviation (global) N=" << smallest.nodes << " -> N="
              << largest.nodes << "              : "
              << TextTable::pct(small_spread) << " -> "
              << TextTable::pct(large_spread)
              << (large_spread < small_spread ? "  (shrinks)" : "") << "\n";
  }
  return 0;
}
