// Figure 9(d): average schedulability — six bars (Global and Local at 2, 3,
// and 4 levels), each the mean over that level count's full size sweep.
// Also prints the §5 headline claims derived from the same data:
//   * improvement > 30% beyond 500 nodes,
//   * level-wise minimum above local maximum,
//   * deviation shrinking with system size.
#include "fig9_common.hpp"

using namespace ftsched;
using namespace ftsched::bench;

int main(int argc, char** argv) {
  const Fig9Args args = parse_fig9_args(argc, argv);
  const std::size_t reps = args.reps;

  struct Family {
    std::uint32_t levels;
    std::vector<std::uint32_t> arities;
  };
  const std::vector<Family> families{
      {2, {8, 16, 32, 48, 64}},
      {3, {4, 6, 8, 12, 16}},
      {4, {3, 4, 5, 6, 7}},
  };

  std::cout << "Figure 9(d): Average Schedulability\n\n";
  TextTable table({"bar", "avg schedulability"});
  std::vector<std::vector<Fig9Row>> all_rows;
  for (const Family& family : families) {
    std::vector<Fig9Row> rows;
    for (std::uint32_t w : family.arities) {
      rows.push_back(run_point(family.levels, w, reps, 2006 + w));
    }
    double global_sum = 0;
    double local_sum = 0;
    for (const Fig9Row& row : rows) {
      global_sum += row.global.point.schedulability.mean;
      local_sum += row.local_random.point.schedulability.mean;
    }
    table.add_row({"G " + std::to_string(family.levels) + "-level",
                   TextTable::pct(global_sum /
                                  static_cast<double>(rows.size()))});
    table.add_row({"L " + std::to_string(family.levels) + "-level",
                   TextTable::pct(local_sum /
                                  static_cast<double>(rows.size()))});
    all_rows.push_back(std::move(rows));
  }
  table.print(std::cout);

  std::cout << "\nPaper claims derived from this data:\n";
  bool min_above_max = true;
  bool improvement_over_30 = true;
  for (const auto& rows : all_rows) {
    for (const Fig9Row& row : rows) {
      const Summary& global = row.global.point.schedulability;
      const Summary& local = row.local_random.point.schedulability;
      if (global.min <= local.max) min_above_max = false;
      if (row.nodes > 500) {
        const double improvement = (global.mean - local.mean) / local.mean;
        if (improvement <= 0.30) improvement_over_30 = false;
      }
    }
  }
  std::cout << "  level-wise min > local max at every point : "
            << (min_above_max ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "  improvement > 30% beyond 500 nodes        : "
            << (improvement_over_30 ? "HOLDS" : "VIOLATED") << "\n";
  for (const auto& rows : all_rows) {
    const Summary& small = rows.front().global.point.schedulability;
    const Summary& large = rows.back().global.point.schedulability;
    const double small_spread = small.max - small.min;
    const double large_spread = large.max - large.min;
    std::cout << "  deviation (global) N=" << rows.front().nodes << " -> N="
              << rows.back().nodes << "              : "
              << TextTable::pct(small_spread) << " -> "
              << TextTable::pct(large_spread)
              << (large_spread < small_spread ? "  (shrinks)" : "") << "\n";
  }
  if (args.json) {
    std::vector<Fig9Row> flat;
    for (const auto& rows : all_rows) {
      flat.insert(flat.end(), rows.begin(), rows.end());
    }
    const std::string path = args.json_path.empty()
                                 ? "BENCH_fig9d_average.json"
                                 : args.json_path;
    write_bench_json(path, "fig9d_average", reps, flat);
  }
  return 0;
}
