// Packet-switched backdrop: latency vs offered load on the same fabric the
// circuit scheduler manages, for adaptive and static (d-mod-k) per-hop
// routing. This is the regime the paper's circuit scheduling escapes for
// long-lived connections — once a circuit is granted, its "latency" is one
// traversal with zero queueing, at the price of the setup pass (Table 1).
#include <cstdlib>
#include <iostream>

#include "simnet/packet_sim.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::uint64_t measure =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3000;

  const FatTree tree = FatTree::symmetric(3, 8);
  std::cout << "Packet switching on FT(3,8), 512 PEs, uniform traffic "
               "(measure window " << measure << " cycles)\n\n";

  TextTable table({"offered load", "routing", "throughput", "avg latency",
                   "max latency", "queue fill"});
  for (const double rate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (const PacketRouting routing :
         {PacketRouting::kAdaptive, PacketRouting::kStatic}) {
      PacketSimOptions options;
      options.injection_rate = rate;
      options.routing = routing;
      options.measure_cycles = measure;
      PacketSim sim(tree, options);
      const PacketSimReport report = sim.run();
      table.add_row(
          {TextTable::pct(rate, 0),
           routing == PacketRouting::kAdaptive ? "adaptive" : "d-mod-k",
           TextTable::pct(report.throughput),
           TextTable::num(report.avg_latency, 1),
           TextTable::num(report.max_latency, 0),
           TextTable::pct(report.avg_queue_occupancy)});
    }
  }
  table.print(std::cout);

  std::cout << "\nWormhole switching (4-flit messages, adaptive routing):\n\n";
  TextTable worm({"offered msgs", "flit load", "throughput (msgs)",
                  "avg tail latency", "queue fill"});
  for (const double rate : {0.05, 0.1, 0.15, 0.2, 0.25}) {
    PacketSimOptions options;
    options.injection_rate = rate;
    options.flits_per_packet = 4;
    options.measure_cycles = measure;
    PacketSim sim(tree, options);
    const PacketSimReport report = sim.run();
    worm.add_row({TextTable::pct(rate, 0), TextTable::pct(rate * 4, 0),
                  TextTable::pct(report.throughput),
                  TextTable::num(report.avg_latency, 1),
                  TextTable::pct(report.avg_queue_occupancy)});
  }
  worm.print(std::cout);

  std::cout << "\nContrast with circuit mode: a granted circuit's transfer "
               "latency is the\nwire path alone (5 hops here) for the "
               "connection's whole lifetime, and the\ncentralized level-wise "
               "setup costs ~N block-cycles once (Table 1). Packet\nmode "
               "needs no setup but pays per-packet queueing that explodes "
               "past the\nsaturation knee.\n";
  return 0;
}
