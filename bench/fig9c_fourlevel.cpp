// Figure 9(c): schedulability ratio of four-level fat trees,
// N ∈ {81 (3⁴), 256 (4⁴), 625 (5⁴), 1296 (6⁴), 2401 (7⁴)}.
// Usage: fig9c_fourlevel [reps] [--csv] [--json[=FILE]]
#include <cstdlib>

#include "fig9_common.hpp"

int main(int argc, char** argv) {
  const auto args = ftsched::bench::parse_fig9_args(argc, argv);
  return ftsched::bench::run_sweep_bench(
      "fig9c_fourlevel", "Figure 9(c): Schedulability of Four-Level Fat-Tree",
      4, {3, 4, 5, 6, 7}, args);
}
