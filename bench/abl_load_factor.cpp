// Ablation: offered load. Partial permutations at load factors 0.1 - 1.0 —
// where does the local baseline start losing circuits, and how far does the
// level-wise scheduler push the knee?
#include <cstdlib>
#include <iostream>

#include "stats/runner.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: schedulability vs offered load "
               "(FT(3,8), 512 nodes, partial permutations, " << reps
            << " reps)\n\n";

  const FatTree tree = FatTree::symmetric(3, 8);
  TextTable table({"load", "Global (level-wise)", "Local (random)",
                   "Local (greedy)", "turnback"});
  for (const double load : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<std::string> row{TextTable::pct(load, 0)};
    for (const char* name :
         {"levelwise", "local-random", "local", "turnback"}) {
      ExperimentConfig config;
      config.scheduler = name;
      config.repetitions = reps;
      config.workload.load_factor = load;
      const ExperimentPoint point = run_experiment(tree, config);
      row.push_back(TextTable::pct(point.schedulability.mean));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: at light load everything schedules; the gap "
               "opens as the\nfabric saturates, which is exactly the regime "
               "long-lived connections\ncreate (paper §1: the penalty of low "
               "bandwidth utilization).\n";
  return 0;
}
