// Application-phase workloads: what does each scheduler deliver to an FFT,
// an all-to-all, and a stencil code on the same fabric? Reported per phase
// family: mean schedulability across the phase sequence and the total time
// slots to drain every phase (each phase must complete before the next —
// bulk-synchronous semantics).
#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "util/table.hpp"
#include "workload/applications.hpp"

using namespace ftsched;

namespace {

struct PhaseFamilyResult {
  double mean_ratio = 0.0;
  std::uint64_t total_slots = 0;
};

PhaseFamilyResult run_family(const FatTree& tree, Scheduler& scheduler,
                             const std::vector<ApplicationPhase>& phases) {
  LinkState state(tree);
  PhaseFamilyResult result;
  double ratio_sum = 0.0;
  for (const ApplicationPhase& phase : phases) {
    // First slot of the phase.
    std::vector<Request> pending = phase.requests;
    bool first = true;
    while (!pending.empty()) {
      state.reset();
      const ScheduleResult slot = scheduler.schedule(tree, pending, state);
      if (first) {
        ratio_sum += slot.schedulability_ratio();
        first = false;
      }
      ++result.total_slots;
      std::vector<Request> next;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!slot.outcomes[i].granted) next.push_back(pending[i]);
      }
      FT_REQUIRE(next.size() < pending.size());
      pending = std::move(next);
    }
  }
  result.mean_ratio = ratio_sum / static_cast<double>(phases.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t a2a_rounds =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 32;

  const FatTree tree = FatTree::symmetric(3, 8);
  Xoshiro256ss rng(2006);

  struct Family {
    std::string name;
    std::vector<ApplicationPhase> phases;
  };
  std::vector<Family> families;
  families.push_back({"FFT butterfly", fft_butterfly_phases(tree)});
  families.push_back(
      {"all-to-all (" + std::to_string(a2a_rounds) + " rounds)",
       all_to_all_phases(tree, a2a_rounds)});
  families.push_back({"3-D stencil halo", stencil_phases(tree, 3)});
  families.push_back({"random BSP x8", random_phases(tree, 8, rng)});

  std::cout << "Application phase sequences on FT(3,8), 512 PEs\n"
            << "(ratio = first-slot schedulability, slots = total rounds to "
               "drain all phases)\n\n";

  TextTable table({"workload", "phases", "scheduler", "first-slot ratio",
                   "slots", "slots/phase"});
  for (const Family& family : families) {
    for (const char* name : {"levelwise", "local-random", "dmodk"}) {
      auto scheduler = make_scheduler(name, 1).value();
      const PhaseFamilyResult r =
          run_family(tree, *scheduler, family.phases);
      table.add_row(
          {family.name, std::to_string(family.phases.size()), name,
           TextTable::pct(r.mean_ratio), std::to_string(r.total_slots),
           TextTable::num(static_cast<double>(r.total_slots) /
                              static_cast<double>(family.phases.size()),
                          2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nStructured phases are friendlier than random traffic for "
               "everyone — and\nsome (single-digit exchanges, ring halos) "
               "route perfectly even statically.\nThe level-wise scheduler "
               "is the only one that never needs more than ~2\nslots per "
               "phase on any family.\n";
  return 0;
}
