// Table 1: performance of the pipelined hardware scheduler (paper §6) for
// three-level fat trees with 64 (4×4 switches), 512 (8×8) and 4096 (16×16)
// nodes. The cycle COUNTS come from the cycle-accurate pipeline model
// streaming a full permutation; the nanosecond scaling comes from the
// Table-1-calibrated TimingModel (base 5.5 ns + 1 ns per priority-selector
// level). Paper values printed alongside for comparison.
#include <cstdlib>
#include <iostream>

#include "hw/pipeline.hpp"
#include "hw/timing_model.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 2006;

  std::cout << "Table 1: hardware scheduler performance "
               "(three-level fat tree, one full permutation)\n\n";

  struct PaperRow {
    std::uint32_t w;
    double single_ns;
    double all_ns;
  };
  const PaperRow paper_rows[] = {{4, 15.0, 480.0},
                                 {8, 17.0, 4352.0},
                                 {16, 19.0, 38912.0}};

  const TimingModel timing;
  TextTable table({"N (switch)", "single req (ns)", "paper", "all reqs (ns)",
                   "paper", "cycles", "granted", "RAW fwds"});
  for (const PaperRow& row : paper_rows) {
    const FatTree tree = FatTree::symmetric(3, row.w);
    LevelwisePipeline pipeline(tree);
    Xoshiro256ss rng(seed);
    const auto batch = random_permutation(tree.node_count(), rng);
    const PipelineReport report = pipeline.schedule(batch);

    const double single = timing.request_latency_ns(3, row.w);
    const double all =
        timing.batch_throughput_ns(tree.node_count(), row.w);
    table.add_row(
        {std::to_string(tree.node_count()) + " (" + std::to_string(row.w) +
             "x" + std::to_string(row.w) + ")",
         TextTable::num(single, 1), TextTable::num(row.single_ns, 1),
         TextTable::num(all, 0), TextTable::num(row.all_ns, 0),
         std::to_string(report.cycles),
         std::to_string(report.result.granted_count()) + "/" +
             std::to_string(batch.size()),
         std::to_string(report.raw_forwards)});
  }
  table.print(std::cout);

  std::cout << "\nNotes: 'all reqs' uses the paper's accounting (N cycles, "
               "fill excluded);\nthe cycle column is the model's exact count "
               "N + blocks - 1. The paper's\n<40us claim for 4096 nodes: "
            << TextTable::num(timing.batch_total_ns(4096, 3, 16) / 1000.0, 2)
            << " us including fill.\n";
  return 0;
}
