// Figure 9(a): schedulability ratio of two-level fat trees,
// N ∈ {64 (8²), 256 (16²), 1024 (32²), 2304 (48²), 4096 (64²)}.
// (The paper's "64(4²)" label is inconsistent — 4² = 16; every other label
// is N = w², so the 64-node point is built as FT(2,8). See DESIGN.md.)
// Usage: fig9a_twolevel [reps] [--csv] [--json[=FILE]]
#include <cstdlib>

#include "fig9_common.hpp"

int main(int argc, char** argv) {
  const auto args = ftsched::bench::parse_fig9_args(argc, argv);
  return ftsched::bench::run_sweep_bench(
      "fig9a_twolevel", "Figure 9(a): Schedulability of Two-Level Fat-Tree",
      2, {8, 16, 32, 48, 64}, args);
}
