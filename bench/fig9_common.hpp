// Shared driver for the Figure-9 schedulability benches.
//
// Protocol, exactly as paper §5: 100 randomly generated communication
// permutations per test point; each permutation is scheduled by the
// Level-wise scheduler ("Global") and by the conventional adaptive scheduler
// with local information ("Local"); the bar is the average schedulability
// ratio, the whiskers the observed min and max.
//
// The paper describes the baseline as "each switch selects a routing path
// randomly from the available local ports" (§1), so "Local" here is the
// random-port local scheduler; the greedy (first-fit) variant is also
// printed for completeness since the paper mentions "greedy or random".
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "stats/runner.hpp"
#include "util/table.hpp"

namespace ftsched::bench {

struct Fig9Row {
  ExperimentPoint global;
  ExperimentPoint local_random;
  ExperimentPoint local_greedy;
  std::uint64_t nodes = 0;
  std::uint32_t arity = 0;
};

inline Fig9Row run_point(std::uint32_t levels, std::uint32_t arity,
                         std::size_t reps, std::uint64_t seed) {
  const FatTree tree = FatTree::symmetric(levels, arity);
  Fig9Row row;
  row.nodes = tree.node_count();
  row.arity = arity;
  ExperimentConfig config;
  config.repetitions = reps;
  config.seed = seed;
  config.scheduler = "levelwise";
  row.global = run_experiment(tree, config);
  config.scheduler = "local-random";
  row.local_random = run_experiment(tree, config);
  config.scheduler = "local";
  row.local_greedy = run_experiment(tree, config);
  return row;
}

inline void print_sweep(const std::string& title, std::uint32_t levels,
                        const std::vector<std::uint32_t>& arities,
                        std::size_t reps, bool csv = false,
                        std::vector<Fig9Row>* out = nullptr) {
  if (!csv) {
    std::cout << title << "\n";
    std::cout << "(avg [min, max] over " << reps
              << " random permutations per point)\n\n";
  }
  TextTable table(
      csv ? std::vector<std::string>{"nodes", "arity", "levels",
                                     "global_mean", "global_min",
                                     "global_max", "local_random_mean",
                                     "local_greedy_mean"}
          : std::vector<std::string>{"N (w^l)", "Global (level-wise)",
                                     "Local (random)", "Local (greedy)",
                                     "improvement"});
  for (std::uint32_t w : arities) {
    const Fig9Row row = run_point(levels, w, reps, /*seed=*/2006 + w);
    if (csv) {
      table.add_row({std::to_string(row.nodes), std::to_string(w),
                     std::to_string(levels),
                     TextTable::num(row.global.schedulability.mean, 4),
                     TextTable::num(row.global.schedulability.min, 4),
                     TextTable::num(row.global.schedulability.max, 4),
                     TextTable::num(row.local_random.schedulability.mean, 4),
                     TextTable::num(row.local_greedy.schedulability.mean, 4)});
    } else {
      const double improvement = (row.global.schedulability.mean -
                                  row.local_random.schedulability.mean) /
                                 row.local_random.schedulability.mean;
      table.add_row({std::to_string(row.nodes) + " (" + std::to_string(w) +
                         "^" + std::to_string(levels) + ")",
                     row.global.schedulability.ratio_string(),
                     row.local_random.schedulability.ratio_string(),
                     row.local_greedy.schedulability.ratio_string(),
                     "+" + TextTable::pct(improvement)});
    }
    if (out) out->push_back(row);
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\n";
  }
}

/// Shared argv handling for the three sweep benches:
/// [reps] [--csv] in any order.
struct Fig9Args {
  std::size_t reps = 100;
  bool csv = false;
};

inline Fig9Args parse_fig9_args(int argc, char** argv) {
  Fig9Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
    } else {
      args.reps = static_cast<std::size_t>(std::atoi(arg.c_str()));
    }
  }
  if (args.reps == 0) args.reps = 100;
  return args;
}

}  // namespace ftsched::bench
