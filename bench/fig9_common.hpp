// Shared driver for the Figure-9 schedulability benches.
//
// Protocol, exactly as paper §5: 100 randomly generated communication
// permutations per test point; each permutation is scheduled by the
// Level-wise scheduler ("Global") and by the conventional adaptive scheduler
// with local information ("Local"); the bar is the average schedulability
// ratio, the whiskers the observed min and max.
//
// The paper describes the baseline as "each switch selects a routing path
// randomly from the available local ports" (§1), so "Local" here is the
// random-port local scheduler; the greedy (first-fit) variant is also
// printed for completeness since the paper mentions "greedy or random".
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "stats/runner.hpp"
#include "util/table.hpp"

namespace ftsched::bench {

/// One scheduler's result at one tree size, with its wall time — the
/// machine-readable BENCH_*.json carries throughput alongside the ratios.
struct TimedPoint {
  ExperimentPoint point;
  double wall_ms = 0.0;

  double requests_per_sec() const {
    if (wall_ms <= 0.0) return 0.0;
    return static_cast<double>(point.total_requests) / (wall_ms / 1000.0);
  }
};

struct Fig9Row {
  TimedPoint global;
  TimedPoint local_random;
  TimedPoint local_greedy;
  std::uint32_t levels = 0;
  std::uint64_t nodes = 0;
  std::uint32_t arity = 0;
};

inline TimedPoint run_timed(const FatTree& tree, ExperimentConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  TimedPoint timed;
  timed.point = run_experiment(tree, config);
  timed.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return timed;
}

inline Fig9Row run_point(std::uint32_t levels, std::uint32_t arity,
                         std::size_t reps, std::uint64_t seed,
                         std::size_t threads = 1) {
  const FatTree tree = FatTree::symmetric(levels, arity);
  Fig9Row row;
  row.levels = levels;
  row.nodes = tree.node_count();
  row.arity = arity;
  ExperimentConfig config;
  config.repetitions = reps;
  config.seed = seed;
  config.threads = threads;
  config.scheduler = "levelwise";
  row.global = run_timed(tree, config);
  config.scheduler = "local-random";
  row.local_random = run_timed(tree, config);
  config.scheduler = "local";
  row.local_greedy = run_timed(tree, config);
  return row;
}

inline void print_sweep(const std::string& title, std::uint32_t levels,
                        const std::vector<std::uint32_t>& arities,
                        std::size_t reps, bool csv = false,
                        std::vector<Fig9Row>* out = nullptr,
                        std::size_t threads = 1) {
  if (!csv) {
    std::cout << title << "\n";
    std::cout << "(avg [min, max] over " << reps
              << " random permutations per point)\n\n";
  }
  TextTable table(
      csv ? std::vector<std::string>{"nodes", "arity", "levels",
                                     "global_mean", "global_min",
                                     "global_max", "local_random_mean",
                                     "local_greedy_mean"}
          : std::vector<std::string>{"N (w^l)", "Global (level-wise)",
                                     "Local (random)", "Local (greedy)",
                                     "improvement"});
  for (std::uint32_t w : arities) {
    const Fig9Row row = run_point(levels, w, reps, /*seed=*/2006 + w, threads);
    const Summary& global = row.global.point.schedulability;
    const Summary& local_random = row.local_random.point.schedulability;
    const Summary& local_greedy = row.local_greedy.point.schedulability;
    if (csv) {
      table.add_row({std::to_string(row.nodes), std::to_string(w),
                     std::to_string(levels), TextTable::num(global.mean, 4),
                     TextTable::num(global.min, 4),
                     TextTable::num(global.max, 4),
                     TextTable::num(local_random.mean, 4),
                     TextTable::num(local_greedy.mean, 4)});
    } else {
      const double improvement =
          (global.mean - local_random.mean) / local_random.mean;
      table.add_row({std::to_string(row.nodes) + " (" + std::to_string(w) +
                         "^" + std::to_string(levels) + ")",
                     global.ratio_string(), local_random.ratio_string(),
                     local_greedy.ratio_string(),
                     "+" + TextTable::pct(improvement)});
    }
    if (out) out->push_back(row);
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\n";
  }
}

inline void write_timed_point(std::ostream& os, const char* scheduler,
                              const TimedPoint& timed) {
  const Summary& s = timed.point.schedulability;
  os << '"' << scheduler << "\":{\"mean\":" << s.mean << ",\"min\":" << s.min
     << ",\"max\":" << s.max << ",\"stddev\":" << s.stddev
     << ",\"wall_ms\":" << timed.wall_ms
     << ",\"requests_per_sec\":" << timed.requests_per_sec() << '}';
}

/// BENCH_*.json: one self-contained JSON document per bench —
///   {"bench":..,"reps":..,"threads":..,"points":[{"levels":..,"arity":..,
///    "nodes":..,"schedulers":{"<name>":{"mean","min","max","stddev",
///    "wall_ms","requests_per_sec"},..}},..]}
/// `threads` records the repetition fan-out the numbers were measured with;
/// the ratio fields are thread-count-invariant, the wall-clock fields are
/// not. See docs/OBSERVABILITY.md for the schema contract CI validates.
inline void write_bench_json(const std::string& path,
                             const std::string& bench, std::size_t reps,
                             const std::vector<Fig9Row>& rows,
                             std::size_t threads = 1) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return;
  }
  os << "{\"bench\":\"" << obs::json_escape(bench) << "\",\"reps\":" << reps
     << ",\"threads\":" << threads << ",\"points\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Fig9Row& row = rows[i];
    if (i) os << ',';
    os << "\n{\"levels\":" << row.levels << ",\"arity\":" << row.arity
       << ",\"nodes\":" << row.nodes << ",\"schedulers\":{";
    write_timed_point(os, "levelwise", row.global);
    os << ',';
    write_timed_point(os, "local-random", row.local_random);
    os << ',';
    write_timed_point(os, "local", row.local_greedy);
    os << "}}";
  }
  os << "\n]}\n";
  std::cout << "wrote " << path << "\n";
}

/// Shared argv handling for the sweep benches:
/// [reps] [--csv] [--json[=FILE]] [--threads=N] in any order. `--json`
/// without a file writes BENCH_<bench>.json in the working directory.
struct Fig9Args {
  std::size_t reps = 100;
  bool csv = false;
  bool json = false;
  std::string json_path;  // empty = default BENCH_<bench>.json
  /// Repetition fan-out width (--threads=N; 0 = all hardware threads).
  /// Ratios are bit-identical at any width — only wall_ms moves.
  std::size_t threads = 1;
};

inline Fig9Args parse_fig9_args(int argc, char** argv) {
  Fig9Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 10);
      args.threads = n <= 0 ? exec::hardware_threads()
                            : static_cast<std::size_t>(n);
    } else {
      args.reps = static_cast<std::size_t>(std::atoi(arg.c_str()));
    }
  }
  if (args.reps == 0) args.reps = 100;
  return args;
}

/// Runs a standard single-family sweep bench end to end (fig9a/b/c share
/// exactly this shape): print the table, optionally drop BENCH_<name>.json.
inline int run_sweep_bench(const std::string& bench, const std::string& title,
                           std::uint32_t levels,
                           const std::vector<std::uint32_t>& arities,
                           const Fig9Args& args) {
  std::vector<Fig9Row> rows;
  print_sweep(title, levels, arities, args.reps, args.csv, &rows,
              args.threads);
  if (args.json) {
    const std::string path =
        args.json_path.empty() ? "BENCH_" + bench + ".json" : args.json_path;
    write_bench_json(path, bench, args.reps, rows, args.threads);
  }
  return 0;
}

}  // namespace ftsched::bench
