// Shared driver for the Figure-9 schedulability benches.
//
// Protocol, exactly as paper §5: 100 randomly generated communication
// permutations per test point; each permutation is scheduled by the
// Level-wise scheduler ("Global") and by the conventional adaptive scheduler
// with local information ("Local"); the bar is the average schedulability
// ratio, the whiskers the observed min and max.
//
// The paper describes the baseline as "each switch selects a routing path
// randomly from the available local ports" (§1), so "Local" here is the
// random-port local scheduler; the greedy (first-fit) variant is also
// printed for completeness since the paper mentions "greedy or random".
#pragma once

#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/env.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/stopwatch.hpp"
#include "stats/runner.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace ftsched::bench {

/// One scheduler's result at one tree size, with its wall time — the
/// machine-readable BENCH_*.json carries throughput alongside the ratios.
struct TimedPoint {
  ExperimentPoint point;
  double wall_ms = 0.0;

  double requests_per_sec() const {
    if (wall_ms <= 0.0) return 0.0;
    return static_cast<double>(point.total_requests) / (wall_ms / 1000.0);
  }
};

struct Fig9Row {
  TimedPoint global;
  TimedPoint local_random;
  TimedPoint local_greedy;
  std::uint32_t levels = 0;
  std::uint64_t nodes = 0;
  std::uint32_t arity = 0;
};

inline TimedPoint run_timed(const FatTree& tree, ExperimentConfig& config) {
  const obs::Stopwatch watch;
  TimedPoint timed;
  timed.point = run_experiment(tree, config);
  timed.wall_ms = watch.elapsed_ms();
  return timed;
}

inline Fig9Row run_point(std::uint32_t levels, std::uint32_t arity,
                         std::size_t reps, std::uint64_t seed,
                         std::size_t threads = 1) {
  const FatTree tree = FatTree::symmetric(levels, arity);
  Fig9Row row;
  row.levels = levels;
  row.nodes = tree.node_count();
  row.arity = arity;
  ExperimentConfig config;
  config.repetitions = reps;
  config.seed = seed;
  config.threads = threads;
  config.scheduler = "levelwise";
  row.global = run_timed(tree, config);
  config.scheduler = "local-random";
  row.local_random = run_timed(tree, config);
  config.scheduler = "local";
  row.local_greedy = run_timed(tree, config);
  return row;
}

inline void print_sweep(const std::string& title, std::uint32_t levels,
                        const std::vector<std::uint32_t>& arities,
                        std::size_t reps, bool csv = false,
                        std::vector<Fig9Row>* out = nullptr,
                        std::size_t threads = 1) {
  if (!csv) {
    std::cout << title << "\n";
    std::cout << "(avg [min, max] over " << reps
              << " random permutations per point)\n\n";
  }
  TextTable table(
      csv ? std::vector<std::string>{"nodes", "arity", "levels",
                                     "global_mean", "global_min",
                                     "global_max", "local_random_mean",
                                     "local_greedy_mean"}
          : std::vector<std::string>{"N (w^l)", "Global (level-wise)",
                                     "Local (random)", "Local (greedy)",
                                     "improvement"});
  for (std::uint32_t w : arities) {
    const Fig9Row row = run_point(levels, w, reps, /*seed=*/2006 + w, threads);
    const Summary& global = row.global.point.schedulability;
    const Summary& local_random = row.local_random.point.schedulability;
    const Summary& local_greedy = row.local_greedy.point.schedulability;
    if (csv) {
      table.add_row({std::to_string(row.nodes), std::to_string(w),
                     std::to_string(levels), TextTable::num(global.mean, 4),
                     TextTable::num(global.min, 4),
                     TextTable::num(global.max, 4),
                     TextTable::num(local_random.mean, 4),
                     TextTable::num(local_greedy.mean, 4)});
    } else {
      const double improvement =
          (global.mean - local_random.mean) / local_random.mean;
      table.add_row({std::to_string(row.nodes) + " (" + std::to_string(w) +
                         "^" + std::to_string(levels) + ")",
                     global.ratio_string(), local_random.ratio_string(),
                     local_greedy.ratio_string(),
                     "+" + TextTable::pct(improvement)});
    }
    if (out) out->push_back(row);
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\n";
  }
}

inline void write_timed_point(std::ostream& os, const char* scheduler,
                              const TimedPoint& timed) {
  const Summary& s = timed.point.schedulability;
  os << '"' << scheduler << "\":{\"mean\":" << s.mean << ",\"min\":" << s.min
     << ",\"max\":" << s.max << ",\"stddev\":" << s.stddev
     << ",\"wall_ms\":" << timed.wall_ms
     << ",\"requests_per_sec\":" << timed.requests_per_sec() << '}';
}

/// One profiled scheduler run destined for a BENCH json's profile block.
/// Deque-stored: ProfileSession owns perf fds and is immovable.
struct ProfiledPoint {
  std::string label;
  obs::ProfileSession session;
};

/// The embedded `"profile"` block: same point-object shape as the profile
/// JSONL v1 `point` lines, plus the backend/env header fields inline.
inline void write_profile_block(std::ostream& os,
                                const std::deque<ProfiledPoint>& profiled) {
  const obs::PerfBackend backend =
      profiled.empty() ? obs::PerfBackend::kTimer
                       : profiled.front().session.backend();
  os << "\"profile\":{\"version\":1,\"backend\":\""
     << obs::to_string(backend) << "\",\"env\":";
  obs::write_env_json(os, obs::collect_env());
  os << ",\"points\":[";
  for (std::size_t i = 0; i < profiled.size(); ++i) {
    if (i) os << ',';
    os << "\n";
    profiled[i].session.write_point_json(os, profiled[i].label);
  }
  os << "\n]}";
}

/// BENCH_*.json: one self-contained JSON document per bench —
///   {"bench":..,"reps":..,"threads":..,"env":{..},"points":[{"levels":..,
///    "arity":..,"nodes":..,"schedulers":{"<name>":{"mean","min","max",
///    "stddev","wall_ms","requests_per_sec"},..}},..][,"profile":{..}]}
/// `threads` records the repetition fan-out the numbers were measured with;
/// the ratio fields are thread-count-invariant, the wall-clock fields are
/// not. `env` fingerprints the machine and build (obs::EnvInfo) so ftreport
/// can warn when a regression gate compares artifacts from different boxes.
/// See docs/OBSERVABILITY.md for the schema contract CI validates.
inline void write_bench_json(const std::string& path,
                             const std::string& bench, std::size_t reps,
                             const std::vector<Fig9Row>& rows,
                             std::size_t threads = 1,
                             const std::deque<ProfiledPoint>* profiled =
                                 nullptr) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return;
  }
  os << "{\"bench\":\"" << obs::json_escape(bench) << "\",\"reps\":" << reps
     << ",\"threads\":" << threads << ",\"env\":";
  obs::write_env_json(os, obs::collect_env());
  os << ",\"points\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Fig9Row& row = rows[i];
    if (i) os << ',';
    os << "\n{\"levels\":" << row.levels << ",\"arity\":" << row.arity
       << ",\"nodes\":" << row.nodes << ",\"schedulers\":{";
    write_timed_point(os, "levelwise", row.global);
    os << ',';
    write_timed_point(os, "local-random", row.local_random);
    os << ',';
    write_timed_point(os, "local", row.local_greedy);
    os << "}}";
  }
  os << "\n]";
  if (profiled != nullptr && !profiled->empty()) {
    os << ',';
    write_profile_block(os, *profiled);
  }
  os << "}\n";
  std::cout << "wrote " << path << "\n";
}

/// Shared argv handling for the sweep benches:
/// [reps] [--csv] [--json[=FILE]] [--profile] [--profile-backend=auto|timer]
/// [--threads=N] [--simd=LEVEL] in any order. `--json` without a file writes
/// BENCH_<bench>.json in the working directory.
struct Fig9Args {
  std::size_t reps = 100;
  bool csv = false;
  bool json = false;
  std::string json_path;  // empty = default BENCH_<bench>.json
  /// --profile: re-run the levelwise sweep with the cost profiler attached
  /// and embed the per-level/per-phase attribution as a "profile" block in
  /// the bench JSON (requires --json; ignored without it).
  bool profile = false;
  /// --profile-backend=timer forces the wall-clock fallback backend.
  obs::PerfCounters::Request profile_request =
      obs::PerfCounters::Request::kAuto;
  /// Repetition fan-out width (--threads=N; 0 = all hardware threads).
  /// Ratios are bit-identical at any width — only wall_ms moves.
  std::size_t threads = 1;
  /// --simd=LEVEL (scalar|avx2|avx512|auto): the dispatch level the run was
  /// pinned to, already applied process-wide by parse_fig9_args. Results are
  /// bit-identical at every level (the CI equivalence job diffs them); only
  /// wall time moves.
  std::string simd = "auto";
};

inline Fig9Args parse_fig9_args(int argc, char** argv) {
  Fig9Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = arg.substr(7);
    } else if (arg == "--profile") {
      args.profile = true;
    } else if (arg == "--profile-backend=timer") {
      args.profile_request = obs::PerfCounters::Request::kTimer;
    } else if (arg == "--profile-backend=auto") {
      args.profile_request = obs::PerfCounters::Request::kAuto;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 10);
      args.threads = n <= 0 ? exec::hardware_threads()
                            : static_cast<std::size_t>(n);
    } else if (arg.rfind("--simd=", 0) == 0) {
      args.simd = arg.substr(7);
      if (args.simd == "auto") {
        simd::use_auto();
      } else if (const auto level = simd::parse_level(args.simd)) {
        simd::force(*level);
      } else {
        std::cerr << "unknown --simd '" << args.simd
                  << "' (scalar|avx2|avx512|auto)\n";
        std::exit(2);
      }
    } else {
      args.reps = static_cast<std::size_t>(std::atoi(arg.c_str()));
    }
  }
  if (args.reps == 0) args.reps = 100;
  return args;
}

/// --profile support: re-runs the levelwise sweep — same grid, same seeds,
/// so the profile describes exactly the run the ratios came from — with a
/// ProfileSession attached per point.
inline std::deque<ProfiledPoint> profile_sweep(
    std::uint32_t levels, const std::vector<std::uint32_t>& arities,
    std::size_t reps, std::size_t threads,
    obs::PerfCounters::Request request) {
  std::deque<ProfiledPoint> profiled;
  for (const std::uint32_t w : arities) {
    const FatTree tree = FatTree::symmetric(levels, w);
    ExperimentConfig config;
    config.repetitions = reps;
    config.seed = 2006 + w;
    config.threads = threads;
    config.scheduler = "levelwise";
    ProfiledPoint& pp = profiled.emplace_back();
    pp.label = "levelwise/l" + std::to_string(levels) + "w" +
               std::to_string(w);
    pp.session.set_request(request);
    config.profiler = &pp.session;
    run_experiment(tree, config);
  }
  return profiled;
}

/// Runs a standard single-family sweep bench end to end (fig9a/b/c share
/// exactly this shape): print the table, optionally drop BENCH_<name>.json.
inline int run_sweep_bench(const std::string& bench, const std::string& title,
                           std::uint32_t levels,
                           const std::vector<std::uint32_t>& arities,
                           const Fig9Args& args) {
  std::vector<Fig9Row> rows;
  print_sweep(title, levels, arities, args.reps, args.csv, &rows,
              args.threads);
  if (args.json) {
    std::deque<ProfiledPoint> profiled;
    if (args.profile) {
      profiled = profile_sweep(levels, arities, args.reps, args.threads,
                               args.profile_request);
    }
    const std::string path =
        args.json_path.empty() ? "BENCH_" + bench + ".json" : args.json_path;
    write_bench_json(path, bench, args.reps, rows, args.threads,
                     profiled.empty() ? nullptr : &profiled);
  }
  return 0;
}

}  // namespace ftsched::bench
