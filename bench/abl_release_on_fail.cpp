// Ablation: what a failed request leaves behind.
//   * local baseline: tear down the partial path (default) vs hold it
//     ("local-hold", modeling switches that do not reclaim reservations
//     within the scheduling window),
//   * level-wise: release rejected requests' lower-level channels vs keep
//     them (the pipelined hardware has no rollback path) — measured by the
//     residual occupancy a following batch inherits.
#include <cstdlib>
#include <iostream>

#include "core/levelwise_scheduler.hpp"
#include "stats/runner.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: release-on-fail (" << reps << " reps)\n\n";

  // Part 1: local baseline, release vs hold.
  TextTable part1({"shape", "scheduler", "schedulability"});
  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  for (const Shape& shape : {Shape{3, 8}, Shape{4, 5}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const char* name : {"local", "local-hold"}) {
      ExperimentConfig config;
      config.scheduler = name;
      config.repetitions = reps;
      config.allow_residual = std::string(name) == "local-hold";
      const ExperimentPoint point = run_experiment(tree, config);
      part1.add_row({"FT(" + std::to_string(shape.levels) + "," +
                         std::to_string(shape.w) + ")",
                     name, point.schedulability.ratio_string()});
    }
  }
  part1.print(std::cout);

  // Part 2: level-wise residual occupancy — channels a rejected request
  // would strand if the scheduler (like the hardware pipeline) cannot roll
  // back, measured as extra occupied channels after a full permutation.
  std::cout << "\nLevel-wise residual occupancy without rollback:\n\n";
  TextTable part2(
      {"shape", "granted-only channels", "with residue", "stranded"});
  for (const Shape& shape : {Shape{3, 8}, Shape{4, 5}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    Xoshiro256ss rng(7);
    std::uint64_t clean_total = 0;
    std::uint64_t residue_total = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto batch = random_permutation(tree.node_count(), rng);
      LevelwiseOptions release;
      LevelwiseScheduler with_release(release);
      LinkState a(tree);
      (void)with_release.schedule(tree, batch, a);
      clean_total += a.total_occupied();

      LevelwiseOptions hold;
      hold.release_rejected = false;
      LevelwiseScheduler without_release(hold);
      LinkState b(tree);
      (void)without_release.schedule(tree, batch, b);
      residue_total += b.total_occupied();
    }
    part2.add_row({"FT(" + std::to_string(shape.levels) + "," +
                       std::to_string(shape.w) + ")",
                   std::to_string(clean_total / reps),
                   std::to_string(residue_total / reps),
                   "+" + std::to_string((residue_total - clean_total) / reps)});
  }
  part2.print(std::cout);
  std::cout << "\nTakeaway: within one batch the grant set is identical "
               "either way\n(level-major order); rollback only matters for "
               "what the NEXT batch\ninherits — the stranded channels column "
               "is what the FPGA design pays\nfor having no rollback path.\n";
  return 0;
}
