// Ablation: multi-lane hardware pipeline. The paper's design accepts one
// request per block-cycle; banking the availability RAMs row-interleaved
// lets K requests enter per cycle at the cost of bank-conflict stalls.
// Sweep K and report speedup and the conflict tax on random permutations.
#include <cstdlib>
#include <iostream>

#include "hw/multilane.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  std::cout << "Ablation: multi-lane scheduler pipeline "
               "(random permutations, " << reps << " reps)\n\n";

  TextTable table({"shape", "lanes", "banks", "cycles", "speedup",
                   "stall cycles", "granted"});
  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  struct LaneConfig {
    std::uint32_t lanes;
    std::uint32_t banks;  // 0 = same as lanes
  };
  for (const Shape& shape : {Shape{3, 8}, Shape{3, 16}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const LaneConfig cfg : {LaneConfig{1, 0}, LaneConfig{2, 0},
                                 LaneConfig{4, 0}, LaneConfig{4, 16},
                                 LaneConfig{8, 0}, LaneConfig{8, 32}}) {
      MultilaneOptions options;
      options.lanes = cfg.lanes;
      options.banks = cfg.banks;
      MultilanePipeline pipeline(tree, options);
      Xoshiro256ss rng(31);
      std::vector<double> cycles;
      std::vector<double> speedups;
      std::vector<double> stalls;
      std::vector<double> granted;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto batch = random_permutation(tree.node_count(), rng);
        const MultilaneReport report = pipeline.schedule(batch);
        cycles.push_back(static_cast<double>(report.cycles));
        speedups.push_back(report.speedup());
        stalls.push_back(static_cast<double>(report.bank_stall_cycles));
        granted.push_back(static_cast<double>(report.result.granted_count()));
      }
      table.add_row({"FT(" + std::to_string(shape.levels) + "," +
                         std::to_string(shape.w) + ")",
                     std::to_string(cfg.lanes),
                     std::to_string(cfg.banks == 0 ? cfg.lanes : cfg.banks),
                     TextTable::num(Summary::from(cycles).mean, 1),
                     TextTable::num(Summary::from(speedups).mean, 2) + "x",
                     TextTable::num(Summary::from(stalls).mean, 1),
                     TextTable::num(Summary::from(granted).mean, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: grants are identical at every configuration "
               "(lane order preserves\nthe sequential semantics). With banks "
               "= lanes, random destination rows\ncollide birthday-style and "
               "the speedup is sublinear; widening to 4x banks\nrecovers "
               "most of the ideal K.\n";
  return 0;
}
