// Graceful-degradation sweep: schedulability and recovery under dynamic
// cable faults, the robustness counterpart of the Figure-9 benches.
//
// Each point runs the degradation engine (FabricManager + retry/backoff
// over the DES kernel) at one fault intensity: the expected fraction of
// cables that fail at least once within the horizon. Rate 0 uses the same
// per-repetition seeds as the fig9 benches (seed 2006 + arity), so its
// schedulability summary is bit-identical to the corresponding fig9 point —
// the regression anchor CI pins via ftreport.
//
// Usage: fig_degradation [reps] [--csv] [--json[=FILE]] [--threads=N]
//                        [--retry=SPEC] [--horizon=T] [--rates=R1,R2,...]
//                        [--schedulers=A,B,...] [--flight=FILE] [--profile]
//                        [--profile-backend=auto|timer]
//
// --schedulers sweeps several registry schedulers per (topology, rate)
// point — the fault-aware policy comparison (levelwise vs
// levelwise-balanced) rides on this. Each JSON point carries its
// "scheduler" name plus the residual-fabric load-quality summaries
// (imbalance_max_over_mean / imbalance_cov / imbalance_hotspot) that the
// ftreport degradation-quality gate compares across policies.
//
// --flight=FILE attaches the lifecycle flight recorder to every point (one
// ring per worker thread) and writes the combined dump; request ids carry a
// per-point namespace on top of the per-repetition one, so one file holds
// the whole sweep's ledger. The hook is also armed as the crash black box.
//
// --profile attaches the hot-path cost profiler to every point (requires
// --json): each point's per-level/per-phase attribution — covering every
// scheduler batch the DES drives, arrivals and retry drains alike — lands
// in a "profile" block in the bench JSON. Unlike the fig9 benches there is
// no separate profiled re-run; the profiler observes the measured run
// itself (it never steers scheduling, so the ratios are unchanged).
#include <algorithm>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/degradation.hpp"
#include "fig9_common.hpp"
#include "obs/env.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"

namespace ftsched::bench {
namespace {

struct TreeSpec {
  std::uint32_t levels;
  std::uint32_t arity;
};

struct Args {
  std::size_t reps = 100;
  bool csv = false;
  bool json = false;
  std::string json_path;
  std::size_t threads = 1;
  std::string retry = "backoff:1:8";
  SimTime horizon = 1000;
  std::vector<double> rates = {0.0, 0.1, 0.25, 0.5, 0.75};
  std::vector<std::string> schedulers = {"levelwise"};
  std::string flight_path;
  bool profile = false;
  obs::PerfCounters::Request profile_request =
      obs::PerfCounters::Request::kAuto;
};

std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) rates.push_back(std::atof(item.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rates;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 10);
      args.threads = n <= 0 ? exec::hardware_threads()
                            : static_cast<std::size_t>(n);
    } else if (arg.rfind("--retry=", 0) == 0) {
      args.retry = arg.substr(8);
    } else if (arg.rfind("--horizon=", 0) == 0) {
      args.horizon = static_cast<SimTime>(std::atol(arg.c_str() + 10));
    } else if (arg.rfind("--rates=", 0) == 0) {
      args.rates = parse_rates(arg.substr(8));
    } else if (arg.rfind("--schedulers=", 0) == 0) {
      args.schedulers.clear();
      const std::string spec = arg.substr(13);
      std::size_t pos = 0;
      while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty()) args.schedulers.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg.rfind("--flight=", 0) == 0) {
      args.flight_path = arg.substr(9);
    } else if (arg == "--profile") {
      args.profile = true;
    } else if (arg == "--profile-backend=timer") {
      args.profile_request = obs::PerfCounters::Request::kTimer;
    } else if (arg == "--profile-backend=auto") {
      args.profile_request = obs::PerfCounters::Request::kAuto;
    } else {
      args.reps = static_cast<std::size_t>(std::atoi(arg.c_str()));
    }
  }
  if (args.reps == 0) args.reps = 100;
  if (args.rates.empty()) args.rates = {0.0};
  if (args.schedulers.empty()) args.schedulers = {"levelwise"};
  return args;
}

struct DegradationRow {
  TreeSpec spec;
  std::uint64_t nodes = 0;
  double fault_rate = 0.0;
  std::string scheduler;
  DegradationPoint point;
  double wall_ms = 0.0;
};

void write_summary(std::ostream& os, const char* name, const Summary& s) {
  os << '"' << name << "\":{\"mean\":" << s.mean << ",\"min\":" << s.min
     << ",\"max\":" << s.max << ",\"stddev\":" << s.stddev << '}';
}

void write_latency(std::ostream& os, const char* name,
                   const std::vector<double>& samples) {
  os << '"' << name << "\":{\"count\":" << samples.size();
  if (!samples.empty()) {
    os << ",\"p50\":" << percentile(samples, 0.50)
       << ",\"p90\":" << percentile(samples, 0.90)
       << ",\"p99\":" << percentile(samples, 0.99);
  }
  os << '}';
}

/// BENCH_degradation.json:
///   {"bench":"degradation","reps":..,"threads":..,"horizon":..,
///    "retry":"<spec>","env":{..},"points":[{"levels","arity","nodes",
///    "fault_rate","scheduler",
///    "schedulability"/"open_ratio"/"ever_granted":{mean,min,max,stddev},
///    "imbalance_max_over_mean"/"imbalance_cov"/"imbalance_hotspot":{..},
///    counters..., "recovery_success_ratio",
///    "recovery_latency"/"retry_latency":{count[,p50,p90,p99]},
///    "wall_ms"},..][,"profile":{..}]}
/// Ratio and counter fields are thread-count-invariant; wall_ms is not.
/// `env` fingerprints machine and build so ftreport can warn on
/// cross-machine comparisons; `profile` appears under --profile.
void write_json(const std::string& path, const Args& args,
                const std::vector<DegradationRow>& rows,
                const std::deque<ProfiledPoint>& profiled) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return;
  }
  os << "{\"bench\":\"degradation\",\"reps\":" << args.reps
     << ",\"threads\":" << args.threads << ",\"horizon\":" << args.horizon
     << ",\"retry\":\"" << obs::json_escape(args.retry) << "\",\"env\":";
  obs::write_env_json(os, obs::collect_env());
  os << ",\"points\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DegradationRow& row = rows[i];
    const DegradationPoint& p = row.point;
    if (i) os << ',';
    os << "\n{\"levels\":" << row.spec.levels << ",\"arity\":" << row.spec.arity
       << ",\"nodes\":" << row.nodes << ",\"fault_rate\":" << row.fault_rate
       << ",\"scheduler\":\"" << obs::json_escape(row.scheduler) << "\",";
    write_summary(os, "schedulability", p.schedulability);
    os << ',';
    write_summary(os, "open_ratio", p.open_ratio);
    os << ',';
    write_summary(os, "ever_granted", p.ever_granted);
    os << ',';
    write_summary(os, "imbalance_max_over_mean", p.imbalance_max_over_mean);
    os << ',';
    write_summary(os, "imbalance_cov", p.imbalance_cov);
    os << ',';
    write_summary(os, "imbalance_hotspot", p.imbalance_hotspot);
    os << ",\"total_requests\":" << p.total_requests
       << ",\"fail_events\":" << p.fail_events
       << ",\"repair_events\":" << p.repair_events
       << ",\"victims\":" << p.victims << ",\"recovered\":" << p.recovered
       << ",\"retries\":" << p.retries << ",\"shed\":" << p.shed
       << ",\"permanent_rejects\":" << p.permanent_rejects
       << ",\"abandoned\":" << p.abandoned
       << ",\"recovery_success_ratio\":" << p.recovery_success_ratio() << ',';
    write_latency(os, "recovery_latency", p.recovery_latency);
    os << ',';
    write_latency(os, "retry_latency", p.retry_latency);
    os << ",\"wall_ms\":" << row.wall_ms << '}';
  }
  os << "\n]";
  if (!profiled.empty()) {
    os << ',';
    write_profile_block(os, profiled);
  }
  os << "}\n";
  std::cout << "wrote " << path << "\n";
}

int run(const Args& args) {
  const auto retry = parse_retry_policy(args.retry);
  if (!retry.ok()) {
    std::cerr << "bad --retry: " << retry.message() << "\n";
    return 1;
  }
  // The fig9a 256-node and fig9b 512-node families; rate-0 rows reproduce
  // those benches' levelwise summaries bit for bit (same seed derivation).
  const std::vector<TreeSpec> specs = {{2, 16}, {3, 8}};

  if (!args.csv) {
    std::cout << "Graceful degradation under dynamic cable faults\n";
    std::cout << "(";
    for (std::size_t i = 0; i < args.schedulers.size(); ++i) {
      std::cout << (i ? ", " : "") << args.schedulers[i];
    }
    std::cout << "; retry " << args.retry << ", horizon " << args.horizon
              << ", " << args.reps << " random permutations per point)\n\n";
  }
  TextTable table(
      args.csv
          ? std::vector<std::string>{"nodes", "arity", "levels", "scheduler",
                                     "fault_rate", "sched_mean", "open_mean",
                                     "ever_mean", "recovery_ratio",
                                     "imbalance_mom", "hotspot", "victims",
                                     "recovered"}
          : std::vector<std::string>{"N", "scheduler", "fault rate",
                                     "first-attempt", "open at horizon",
                                     "ever granted", "imbalance", "recovery"});

  // One recorder for the whole sweep: rings sized to the worker fan-out,
  // request ids namespaced per point so the ledgers never collide.
  std::optional<obs::FlightRecorder> recorder;
  if (!args.flight_path.empty()) {
    const std::size_t rings =
        std::max<std::size_t>(1, std::min(args.threads, args.reps));
    recorder.emplace(rings);
    obs::arm_flight_dump_on_contract_failure(*recorder, args.flight_path);
  }

  std::vector<DegradationRow> rows;
  std::deque<ProfiledPoint> profiled;
  std::uint64_t point_counter = 0;
  for (const TreeSpec& spec : specs) {
    const FatTree tree = FatTree::symmetric(spec.levels, spec.arity);
    for (double rate : args.rates) {
      for (const std::string& scheduler : args.schedulers) {
        DegradationConfig config;
        config.scheduler = scheduler;
        config.repetitions = args.reps;
        config.seed = 2006 + spec.arity;  // the fig9 seed for this family
        config.threads = args.threads;
        config.fault_rate = rate;
        config.horizon = args.horizon;
        config.retry = retry.value();
        if (recorder) {
          config.flight = &*recorder;
          config.flight_base = (++point_counter) << 44U;
        }
        if (args.profile && args.json) {
          ProfiledPoint& pp = profiled.emplace_back();
          pp.label = scheduler + "/l" + std::to_string(spec.levels) + "w" +
                     std::to_string(spec.arity) + "/rate" +
                     TextTable::num(rate, 2);
          pp.session.set_request(args.profile_request);
          config.profiler = &pp.session;
        }

        const obs::Stopwatch watch;
        DegradationRow row;
        row.spec = spec;
        row.nodes = tree.node_count();
        row.fault_rate = rate;
        row.scheduler = scheduler;
        row.point = run_degradation(tree, config);
        row.wall_ms = watch.elapsed_ms();

        const DegradationPoint& p = row.point;
        if (args.csv) {
          table.add_row({std::to_string(row.nodes), std::to_string(spec.arity),
                         std::to_string(spec.levels), scheduler,
                         TextTable::num(rate, 2),
                         TextTable::num(p.schedulability.mean, 4),
                         TextTable::num(p.open_ratio.mean, 4),
                         TextTable::num(p.ever_granted.mean, 4),
                         TextTable::num(p.recovery_success_ratio(), 4),
                         TextTable::num(p.imbalance_max_over_mean.mean, 4),
                         TextTable::num(p.imbalance_hotspot.mean, 4),
                         std::to_string(p.victims),
                         std::to_string(p.recovered)});
        } else {
          table.add_row(
              {std::to_string(row.nodes) + " (" + std::to_string(spec.arity) +
                   "^" + std::to_string(spec.levels) + ")",
               scheduler, TextTable::num(rate, 2),
               p.schedulability.ratio_string(), p.open_ratio.ratio_string(),
               p.ever_granted.ratio_string(),
               TextTable::num(p.imbalance_max_over_mean.mean, 3) + "x/" +
                   TextTable::num(p.imbalance_hotspot.mean, 3) + "x",
               TextTable::pct(p.recovery_success_ratio()) + " of " +
                   std::to_string(p.victims)});
        }
        rows.push_back(std::move(row));
      }
    }
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\n";
  }
  if (args.json) {
    const std::string path =
        args.json_path.empty() ? "BENCH_degradation.json" : args.json_path;
    write_json(path, args, rows, profiled);
  }
  if (recorder) {
    obs::disarm_flight_dump_on_contract_failure();
    std::ofstream os(args.flight_path);
    if (!os) {
      std::cerr << "cannot open " << args.flight_path << "\n";
      return 1;
    }
    recorder->write_jsonl(os);
    std::cout << "wrote " << args.flight_path << " ("
              << recorder->recorded() << " events, " << recorder->dropped()
              << " dropped)\n";
  }
  return 0;
}

}  // namespace
}  // namespace ftsched::bench

int main(int argc, char** argv) {
  return ftsched::bench::run(ftsched::bench::parse_args(argc, argv));
}
