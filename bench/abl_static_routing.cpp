// Ablation: how much of the level-wise gain comes from GLOBAL STATE versus
// just good path structure? Compare against static destination-based
// routing (OpenSM-style d-mod-k, which provably never down-conflicts across
// distinct destination leaves) on random permutations and on the adversarial
// patterns where static routing's up-side hashing degenerates.
#include <cstdlib>
#include <iostream>

#include "stats/runner.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: level-wise vs static destination routing (d-mod-k) "
               "vs local\n(" << reps << " reps per cell)\n\n";

  struct Shape {
    std::uint32_t levels;
    std::uint32_t w;
  };
  const TrafficPattern patterns[] = {
      TrafficPattern::kRandomPermutation, TrafficPattern::kShift,
      TrafficPattern::kDigitReversal, TrafficPattern::kTranspose};

  TextTable table({"shape", "pattern", "levelwise", "dmodk",
                   "Local (random)"});
  for (const Shape& shape : {Shape{2, 16}, Shape{3, 8}, Shape{4, 4}}) {
    const FatTree tree = FatTree::symmetric(shape.levels, shape.w);
    for (const TrafficPattern pattern : patterns) {
      std::vector<std::string> row{
          "FT(" + std::to_string(shape.levels) + "," +
              std::to_string(shape.w) + ")",
          std::string(to_string(pattern))};
      for (const char* name : {"levelwise", "dmodk", "local-random"}) {
        ExperimentConfig config;
        config.scheduler = name;
        config.pattern = pattern;
        config.repetitions = reps;
        const ExperimentPoint point = run_experiment(tree, config);
        row.push_back(TextTable::pct(point.schedulability.mean));
      }
      table.add_row(row);
    }
  }
  table.print(std::cout);
  std::cout
      << "\nTakeaway: d-mod-k beats the adaptive local baseline on random "
         "permutations\n(its down paths are conflict-free by construction) "
         "but pays brutally on\npatterns whose destinations share low digits "
         "— while the level-wise\nscheduler, holding the actual global state, "
         "is the best or tied on every\npattern without per-pattern tuning.\n";
  return 0;
}
