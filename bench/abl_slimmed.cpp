// Ablation: non-symmetric arity (m != w), which paper §2 notes the algorithm
// also covers. Slimmed trees (w < m) oversubscribe every level — the cheap
// fabric a cost-conscious cluster builds — and fattened trees (w > m) add
// headroom. Sweep the w:m ratio at fixed node count and watch the
// level-wise/local gap.
#include <cstdlib>
#include <iostream>

#include "stats/runner.hpp"
#include "util/table.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::cout << "Ablation: slimmed / fattened fat trees "
               "(three levels, m = 4 -> 64 nodes, " << reps << " reps)\n\n";

  TextTable table({"FT(l,m,w)", "oversub", "levelwise", "lw-reqmajor",
                   "Local (random)", "gap (reqmajor)"});
  for (std::uint32_t w : {2u, 3u, 4u, 6u, 8u}) {
    const FatTree tree = FatTree::create(FatTreeParams{3, 4, w}).value();
    ExperimentConfig config;
    config.repetitions = reps;
    config.scheduler = "levelwise";
    const ExperimentPoint global_ff = run_experiment(tree, config);
    config.scheduler = "levelwise-reqmajor";
    const ExperimentPoint global_rm = run_experiment(tree, config);
    config.scheduler = "local-random";
    const ExperimentPoint local = run_experiment(tree, config);
    const double gap = global_rm.schedulability.mean -
                       local.schedulability.mean;
    table.add_row(
        {"FT(3,4," + std::to_string(w) + ")",
         TextTable::num(4.0 / w, 2) + ":1",
         TextTable::pct(global_ff.schedulability.mean),
         TextTable::pct(global_rm.schedulability.mean),
         TextTable::pct(local.schedulability.mean),
         (gap >= 0 ? "+" : "") + TextTable::pct(gap)});
  }
  table.print(std::cout);
  std::cout
      << "\nTakeaway: the theorems only need the digit structure, not "
         "symmetry, so the\nalgorithm runs unchanged on m != w. Under heavy "
         "2:1 oversubscription the\npaper's level-major order loses its edge: "
         "a request rejected at level 1\nkeeps holding its level-0 channels "
         "while the rest of the batch is still\nbeing placed at level 0. "
         "Request-major order with immediate rollback\n(lw-reqmajor) returns "
         "those channels in time and stays ahead of the local\nbaseline at "
         "every ratio. With w > m both approaches converge toward 100%\nas "
         "the fabric becomes rearrangeable.\n";
  return 0;
}
