// Figure 9(b): schedulability ratio of three-level fat trees,
// N ∈ {64 (4³), 216 (6³), 512 (8³), 1728 (12³), 4096 (16³)}.
// Usage: fig9b_threelevel [reps] [--csv] [--json[=FILE]]
#include <cstdlib>

#include "fig9_common.hpp"

int main(int argc, char** argv) {
  const auto args = ftsched::bench::parse_fig9_args(argc, argv);
  return ftsched::bench::run_sweep_bench(
      "fig9b_threelevel", "Figure 9(b): Schedulability of Three-Level Fat-Tree",
      3, {4, 6, 8, 12, 16}, args);
}
