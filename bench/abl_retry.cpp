// Ablation: setup retries in the distributed protocol. The plain local
// baseline gives a failed request one shot; in practice a NIC retries after
// the teardown settles. How many attempts until the distributed protocol
// approaches the centralized level-wise scheduler's one-shot ratio — and
// what does that cost in setup cycles?
#include <cstdlib>
#include <iostream>

#include "core/registry.hpp"
#include "simnet/setup_sim.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;

  const FatTree tree = FatTree::symmetric(3, 8);
  std::cout << "Ablation: distributed setup with retries "
               "(FT(3,8), 512 nodes, " << reps << " reps)\n\n";

  // Reference: centralized level-wise, one shot.
  double reference = 0.0;
  {
    auto scheduler = make_scheduler("levelwise", 3).value();
    LinkState state(tree);
    Xoshiro256ss rng(21);
    std::vector<double> ratios;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto batch = random_permutation(tree.node_count(), rng);
      state.reset();
      ratios.push_back(
          scheduler->schedule(tree, batch, state).schedulability_ratio());
    }
    reference = Summary::from(ratios).mean;
  }

  TextTable table({"attempts", "schedulability", "vs levelwise",
                   "quiesce cycles", "teardowns/batch", "p50 lat", "p99 lat"});
  for (const std::uint32_t attempts : {1u, 2u, 3u, 5u, 8u}) {
    SetupSimOptions options;
    options.max_attempts = attempts;
    DistributedSetupSim sim(tree, options);
    LinkState state(tree);
    Xoshiro256ss rng(21);
    std::vector<double> ratios;
    std::vector<double> cycles;
    std::vector<double> teardowns;
    std::vector<double> latencies;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto batch = random_permutation(tree.node_count(), rng);
      const SetupSimReport report = sim.run(batch, state);
      ratios.push_back(report.result.schedulability_ratio());
      cycles.push_back(static_cast<double>(report.cycles));
      teardowns.push_back(static_cast<double>(report.teardowns));
      for (const std::uint64_t latency : report.setup_latency) {
        latencies.push_back(static_cast<double>(latency));
      }
    }
    const Summary ratio = Summary::from(ratios);
    table.add_row({std::to_string(attempts), ratio.ratio_string(),
                   TextTable::pct(ratio.mean - reference),
                   TextTable::num(Summary::from(cycles).mean, 1),
                   TextTable::num(Summary::from(teardowns).mean, 1),
                   TextTable::num(percentile(latencies, 0.5), 0),
                   TextTable::num(percentile(latencies, 0.99), 0)});
  }
  table.print(std::cout);
  std::cout << "\nReference: centralized level-wise one-shot = "
            << TextTable::pct(reference)
            << ".\nTakeaway: retries claw back part of the gap at the price "
               "of teardown\ntraffic and longer setup; the centralized "
               "scheduler gets a better result\nin one pass of N block-cycles "
               "(Table 1).\n";
  return 0;
}
