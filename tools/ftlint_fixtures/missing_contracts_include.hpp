// ftlint fixture: must trigger [self-contained-header] — uses an FT_*
// contract macro without including util/contracts.hpp directly.
// Not compiled — consumed only by the ftlint self-tests.
#pragma once

#include "some/other_header.hpp"

inline int checked(int x) {
  FT_REQUIRE(x >= 0);
  return x;
}
