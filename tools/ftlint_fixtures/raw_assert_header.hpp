// ftlint fixture: must trigger [api-contract] (raw assert in a public
// header). Not compiled — consumed only by the ftlint self-tests.
#pragma once

#include <cassert>

inline int clamp_level(int h, int levels) {
  assert(h < levels);
  return h;
}
