// ftlint fixture: must trigger [no-raw-assert].
// Not compiled — consumed only by the ftlint self-tests.
#include <assert.h>
#include <cassert>

int trip(int x) {
  assert(x > 0);
  // assert(inside a comment) must NOT fire.
  const char* s = "assert(inside a string) must NOT fire";
  (void)s;
  static_assert(sizeof(int) >= 2, "static_assert must NOT fire");
  return x;
}
