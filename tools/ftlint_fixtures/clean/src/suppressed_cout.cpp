// ftlint fixture: the NEGATIVE side of suppression — real violations, each
// covered by a valid allow annotation, so a plain run over clean/ exits 0.
// Both annotation placements are exercised: trailing (same line) and
// standalone (line above). Not compiled.
#include <iostream>

namespace ftsched {

inline void narrate(int step) {
  std::cout << "step " << step << "\n";  // ftlint:allow(no-raw-io) fixture: trailing form
  // ftlint:allow(no-raw-io) fixture: standalone form covers the next line
  std::cerr << "still here\n";
}

}  // namespace ftsched
