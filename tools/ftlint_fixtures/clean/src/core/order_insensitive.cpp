// ftlint fixture: an unordered iteration whose order genuinely cannot be
// observed, annotated with the order-insensitive form — the dedicated
// suppression for [unordered-iteration]. A plain run over clean/ must exit
// 0 and the annotation must not be reported dead. Not compiled.
#include <unordered_map>

namespace ftsched {

inline int population(const std::unordered_map<int, int>& histogram) {
  int total = 0;
  // ftlint:order-insensitive(summing commutes; no order escapes this loop)
  for (const auto& [bucket, count] : histogram) {
    total += count;
  }
  return total;
}

}  // namespace ftsched
