// ftlint fixture: must trigger [no-raw-random]. Not compiled — consumed
// only by the ftlint self-tests.
#include <cstdlib>
#include <random>

int roll() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<int>(gen() % 6u) + std::rand();
}
