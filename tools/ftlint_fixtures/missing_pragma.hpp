// ftlint fixture: must trigger [self-contained-header] — the include guard
// directive is absent.
// Not compiled — consumed only by the ftlint self-tests.

inline int identity(int x) { return x; }
