// ftlint fixture: must trigger [unresolved-include] when scanned with
// --root — the quoted target exists nowhere. Angle includes are never
// resolved, so <vector> below must NOT fire. Not compiled.
#include <vector>

#include "no/such/header.hpp"

int missing_include_fixture() { return 0; }
