// Fixture: raw threading primitives outside src/exec must trip
// no-raw-thread. (This file is never compiled; it only feeds ftlint.)
#include <thread>

#include <vector>

namespace ftsched {

void fan_out_badly(std::size_t n) {
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([] {});
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace ftsched
