// ftlint fixture: must trigger [no-wallclock] — reading a wall clock in a
// deterministic subsystem (src/core by path). The string literal naming a
// clock must NOT fire. Not compiled.
#include <chrono>

namespace ftsched {

inline long long stamp() {
  const char* label = "steady_clock inside a string is fine";
  (void)label;
  return std::chrono::steady_clock::now().time_since_epoch().count();  // bad
}

}  // namespace ftsched
