// Fixture: raw vector intrinsics outside src/util must trip
// no-raw-intrinsics — the include, the vector type, and the intrinsic call
// each on their own. (This file is never compiled; it only feeds ftlint.)
#include <immintrin.h>

namespace ftsched {

unsigned long long and_first_word(const unsigned long long* a,
                                  const unsigned long long* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i anded = _mm256_and_si256(va, vb);
  unsigned long long out[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), anded);
  return __builtin_ia32_lzcnt_u64(out[0]);
}

}  // namespace ftsched
