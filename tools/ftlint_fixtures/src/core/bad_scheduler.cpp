// ftlint fixture: must trigger [transaction-discipline]. The path is
// deliberately core/...scheduler.cpp so the rule's scope matches real
// scheduler translation units. Not compiled.
struct FakeState {
  void occupy(int, int, int, int) {}
  void release(int, int, int, int) {}
  void set_ulink(int, int, int, bool) {}
};

void schedule_badly(FakeState& state) {
  state.occupy(0, 1, 2, 3);     // direct mutation: leak on early exit
  state.set_ulink(0, 1, 2, true);
  FakeState* state_ = &state;
  state_->release(0, 1, 2, 3);
}

void schedule_well(FakeState& state) {
  // Reads and transaction-mediated calls must NOT fire:
  // tx.occupy(...) has a non-state receiver.
  struct Tx {
    void occupy(int, int, int, int) {}
  } tx;
  tx.occupy(0, 1, 2, 3);
  (void)state;
}
