// ftlint fixture: must trigger [unordered-iteration] — the path puts it in
// src/core, a deterministic subsystem, and both the range-for and the
// explicit iterator walk visit an unordered container. Not compiled.
#include <unordered_map>

namespace ftsched {

inline int sum_values() {
  std::unordered_map<int, int> pending;
  int total = 0;
  for (const auto& [key, value] : pending) {  // bad: nondeterministic order
    total += value;
  }
  for (auto it = pending.begin(); it != pending.end(); ++it) {  // bad too
    total += it->second;
  }
  return total;
}

}  // namespace ftsched
