// ftlint fixture: must trigger [no-pointer-key] — an ordered container
// keyed by a pointer orders by allocation address. The pointer in the VALUE
// position must NOT fire. Not compiled.
#include <map>
#include <set>

namespace ftsched {

struct Circuit {};

inline void track(Circuit* c) {
  std::map<Circuit*, int> by_address;       // bad: pointer key
  std::set<const Circuit*> address_set;     // bad: pointer key
  std::map<int, Circuit*> by_id;            // fine: pointer value
  by_address[c] = 0;
  address_set.insert(c);
  by_id[0] = c;
}

}  // namespace ftsched
