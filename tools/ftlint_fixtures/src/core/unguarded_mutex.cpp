// ftlint fixture: must trigger [mutex-guarded-by] — a mutex member with no
// FT_GUARDED_BY / FT_REQUIRES association anywhere in the file. Not
// compiled.
#include <mutex>

namespace ftsched {

class Cache {
 public:
  int get() const { return value_; }

 private:
  std::mutex mu_;  // bad: nothing states what mu_ protects
  int value_ = 0;
};

}  // namespace ftsched
