// Fixture: trips flight-event-guard — emitting a lifecycle event through a
// raw flight-ring record() call instead of the null-guarded FT_FLIGHT_EVENT
// macro (crashes when the recorder is detached, pays event construction even
// when disabled). Not compiled.

namespace ftsched {

struct Ring {
  void record(int event) { (void)event; }
};

void emit_unguarded(Ring* flight_) {
  flight_->record(42);  // bad: must go through FT_FLIGHT_EVENT
}

}  // namespace ftsched
