// Fixture: library code printing directly. Must trip `no-raw-io` — the
// `src/` path component puts this file in the rule's scope, exactly like a
// real library source. A comment mentioning std::cout must NOT fire, and
// neither must the string "printf(" below (literals are stripped).
#include <cstdio>
#include <iostream>

namespace ftsched {

inline void report_progress(int done, int total) {
  std::cout << "progress " << done << "/" << total << "\n";  // bad
  std::cerr << "still running\n";                            // bad
  std::printf("done %d\n", done);                            // bad
  std::fputs("text that says printf( inside a literal", stderr);  // bad call
}

}  // namespace ftsched
