// Fixture: trips linkstate-authority — a module outside src/core, src/fault,
// src/linkstate, and src/simnet mutating LinkState channels directly.
#include "linkstate/link_state.hpp"

namespace ftsched {

void poke_fabric(LinkState& state) {
  state.set_ulink(0, 0, 0, false);
  state.fail_cable(0, 0, 1);
  state.release(0, 0, 2, /*up=*/true);
}

}  // namespace ftsched
