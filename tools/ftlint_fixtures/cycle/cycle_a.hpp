// ftlint fixture: together with cycle_b.hpp, must trigger [include-cycle]
// when scanned with --root (same-directory resolution closes the loop).
// Not compiled.
#pragma once

#include "cycle_b.hpp"

inline int cycle_a() { return 1; }
