// ftlint fixture: the other half of the include cycle. Not compiled.
#pragma once

#include "cycle_a.hpp"

inline int cycle_b() { return 2; }
