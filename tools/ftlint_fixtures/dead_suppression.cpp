// ftlint fixture: must trigger [dead-suppression] twice — one allow that
// absorbs nothing, and one naming a rule that does not exist. Not compiled.
int quiet_value() {
  return 7;  // ftlint:allow(no-raw-io) nothing on this line prints
}

int typo_value() {
  return 8;  // ftlint:allow(no-such-rule) rule name is not in the catalog
}
