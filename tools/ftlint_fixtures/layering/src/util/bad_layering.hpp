// ftlint fixture: must trigger [layering]. The path puts this header in
// src/util, the bottom of the DAG — it may depend on nothing, so both
// includes below are violations (an upward edge and a driver edge).
// Not compiled.
#pragma once

#include "core/request.hpp"       // bad: util -> core is an upward edge
#include "tests/helpers.hpp"      // bad: src/ never includes tests/

namespace ftsched {
inline int layering_fixture() { return 0; }
}  // namespace ftsched
