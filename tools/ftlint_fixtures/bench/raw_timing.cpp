// Fixture: raw timing sources outside src/obs and src/des must trip
// no-raw-timing — benches and tools take wall time through obs::Stopwatch
// and hardware counters through obs::PerfCounters. (This file is never
// compiled; it only feeds ftlint.)
#include <chrono>
#include <ctime>

namespace ftsched {

long measure_badly() {
  const auto start = std::chrono::steady_clock::now();
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const auto stop = std::chrono::high_resolution_clock::now();
  return (stop - start).count() + ts.tv_nsec;
}

long count_cycles_badly() {
  return static_cast<long>(__rdtsc());
}

}  // namespace ftsched
