// ftreport — offline analysis and regression gate for the observability
// outputs this repository emits (docs/OBSERVABILITY.md documents every
// producer).
//
// Report mode: ingest any subset of the artifacts and render one Markdown
// report (optionally a flat CSV as well):
//
//   ftreport report [--metrics FILE.jsonl] [--telemetry FILE.jsonl]
//                   [--trace FILE.json] [--bench BENCH_*.json]
//                   [--flight FILE.jsonl] [--profile FILE]
//                   [--out report.md] [--csv report.csv]
//
//   * --bench      fig9-schema schedulability table per sweep point; when
//                  the file embeds a "profile" block (bench --profile runs)
//                  the hot-path profile section renders too. Chaos-soak
//                  artifacts ({"bench":"chaos_soak"}, from `ftsched soak
//                  --json=FILE`) render a soak summary instead — and a
//                  recorded violation fails the report run with exit 2, so
//                  a CI soak job goes red off the artifact alone
//   * --metrics    MetricsRegistry JSONL: scheduling totals, rejection
//                  breakdown by level and by reason, fabric utilization
//   * --telemetry  LinkTelemetry series JSONL: per-level utilization,
//                  level x stage occupancy heatmap (stages = tenths of the
//                  sample window), saturation histograms, top contended links
//   * --trace      Chrome trace JSON: duration-span rollups by name
//   * --flight     FlightRecorder dump (format v1): per-circuit lifecycle
//                  ledger stitched by request id — admission-latency and
//                  revocation-to-recovery p50/p99, worst-offender circuit
//                  timelines, recovery burn-down over simulated time
//   * --profile    hot-path profile (docs/PERFORMANCE.md): either the JSONL
//                  artifact (ftsched --profile-out, PROFILE_*.jsonl) or any
//                  BENCH_*.json with an embedded "profile" block — derived
//                  per-request costs and the per-(phase, level) self-cost
//                  attribution per point
//
// Regression mode: diff two benchmark JSON files and exit nonzero when the
// candidate got worse — the CI bench gate:
//
//   ftreport --baseline old.json --candidate new.json [--threshold 5%]
//            [--perf]
//
// Three schemas are auto-detected. The repo's fig9 schema ({"bench","reps",
// "points":[...]}) gates on the schedulability `mean` (deterministic for a
// fixed seed, so tight thresholds are safe across machines); --perf
// additionally gates on `requests_per_sec` (machine-dependent — only
// meaningful when both files come from the same box). The degradation
// schema (points carry "fault_rate") gates each (point, rate) on the
// schedulability / open_ratio / ever_granted means and the recovery success
// ratio. google-benchmark JSON ({"benchmarks":[...]}) gates on
// `items_per_second` when present, else `real_time`. A benchmark present in
// the baseline but missing from the candidate is a failure; new candidate
// entries are reported but pass.
//
// Profile gate: when the baseline is a profile JSONL artifact (auto-detected
// off its header line), or under --perf when both documents embed "profile"
// blocks, every baseline point gates on derived.instructions_per_request
// (lower is better — the machine-portable cost metric; wall clock and cache
// misses are too noisy to gate on). The gate only fires from perf_event
// data: timer-backend artifacts warn and pass, so CI degrades gracefully on
// PMU-less runners. Mismatched env fingerprints (cpu/cores/compiler/build/
// governor/simd) warn but still compare — instructions retired barely move
// across same-ISA boxes at a fixed dispatch level.
//
// Anchor mode: pin the degradation engine's fault-free baseline to the
// one-shot fig9 bench — the two must agree bit for bit (same seeds, same
// scheduler), and the degradation file must be internally consistent
// (ratios in [0,1], victims >= recovered, latency percentiles ordered):
//
//   ftreport anchor --degradation BENCH_degradation.json
//            --fig9 BENCH_fig9a_twolevel.json [--scheduler levelwise]
//
// Rate-0 points whose (levels, arity) appear in the fig9 file must match
// that scheduler's mean/min/max/stddev exactly; any tolerance would hide a
// seed-derivation drift. Multi-scheduler sweeps carry a per-point
// "scheduler" field, which overrides --scheduler for that point; points
// whose scheduler has no fig9 column are consistency-checked but not
// pinned.
//
// Quality mode: the degradation-quality gate. Within ONE multi-scheduler
// degradation sweep, compare a capacity-weighted candidate policy against
// an oblivious baseline at every (topology, fault rate) point both were
// swept at:
//
//   ftreport quality --bench BENCH_degradation.json
//            [--baseline-scheduler levelwise]
//            [--candidate-scheduler levelwise-balanced]
//            [--max-sched-drop 0.02]
//
// The candidate must carry a strictly lower plane hot-spot score
// (imbalance_hotspot.mean) at every faulted rate — balanced routing must
// actually spread load over the surviving subtree planes — while keeping
// schedulability within max-sched-drop (relative) of the baseline; pass 0
// to demand equal-or-better schedulability outright. Both sides are
// deterministic per seed, so the gate is exact, not statistical.
//
// Exit codes: 0 = ok / no regression, 1 = regression, missing benchmark,
// anchor mismatch, or quality-gate failure, 2 = usage or parse error.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// --- Minimal JSON ----------------------------------------------------------
// Recursive-descent parser for the subset of RFC 8259 the repo's writers
// emit (they never produce exotic numbers, and escapes beyond \uXXXX basic
// plane are absent). Objects keep insertion order so report tables follow
// the producer's ordering.

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, error);
      case '[':
        return parse_array(out, error);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.str, error);
      case 't':
        if (text_.compare(pos_, 4, "true") != 0) return fail(error, "bad literal");
        pos_ += 4;
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (text_.compare(pos_, 5, "false") != 0) return fail(error, "bad literal");
        pos_ += 5;
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) return fail(error, "bad literal");
        pos_ += 4;
        out.type = JsonValue::Type::kNull;
        return true;
      default:
        return parse_number(out, error);
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(error, "expected object key");
      }
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail(error, "expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out, std::string& error) {
    ++pos_;  // opening '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail(error, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(error, "bad \\u escape");
          }
          // UTF-8 encode the basic-plane code point (the repo's writers
          // only escape control characters, all below U+0800).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail(error, "bad escape");
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail(error, "expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return fail(error, "bad number");
    }
    out.type = JsonValue::Type::kNumber;
    return true;
  }
};

bool parse_file(const std::string& path, JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ftreport: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::string error;
  if (!JsonParser(text).parse(out, error)) {
    std::cerr << "ftreport: " << path << ": " << error << "\n";
    return false;
  }
  return true;
}

/// Parses a JSON-lines file: one JsonValue per non-empty line.
bool parse_jsonl_file(const std::string& path, std::vector<JsonValue>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ftreport: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    if (!JsonParser(line).parse(value, error)) {
      std::cerr << "ftreport: " << path << ":" << lineno << ": " << error
                << "\n";
      return false;
    }
    out.push_back(std::move(value));
  }
  return true;
}

// --- Formatting helpers ----------------------------------------------------

std::string fmt(double v, int precision = 4) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  std::string s = os.str();
  // Trim trailing zeros (but keep one digit after the point).
  const auto dot = s.find('.');
  if (dot != std::string::npos) {
    auto last = s.find_last_not_of('0');
    if (last == dot) ++last;
    s.erase(last + 1);
  }
  return s;
}

std::string fmt_pct(double fraction) { return fmt(fraction * 100.0, 1) + "%"; }

/// Five-step cell shading for the Markdown heatmap (text-only, renders in
/// any viewer).
std::string_view shade(double fraction) {
  if (fraction >= 0.8) return "#### ";
  if (fraction >= 0.6) return "###  ";
  if (fraction >= 0.4) return "##   ";
  if (fraction >= 0.2) return "#    ";
  return ".    ";
}

// --- Profile artifacts -----------------------------------------------------

/// Normalized view of a hot-path profile, whichever container it came in:
/// the JSONL artifact (--profile-out / PROFILE_*.jsonl, one header line plus
/// one {"type":"point"} line per point) or the "profile" block a bench run
/// with --profile embeds in its BENCH_*.json.
struct ProfileDoc {
  std::string bench;
  std::string backend;
  JsonValue env;                  ///< kObject when the producer recorded one
  std::vector<JsonValue> points;  ///< point objects: label/total/phases/derived
};

bool extract_profile_block(const JsonValue& doc, ProfileDoc& out) {
  const JsonValue* block = doc.find("profile");
  if (!block || block->type != JsonValue::Type::kObject) return false;
  const JsonValue* backend = block->find("backend");
  if (backend && backend->type == JsonValue::Type::kString) {
    out.backend = backend->str;
  }
  const JsonValue* bench = doc.find("bench");
  if (bench && bench->type == JsonValue::Type::kString) out.bench = bench->str;
  if (const JsonValue* env = block->find("env")) out.env = *env;
  const JsonValue* points = block->find("points");
  if (points && points->type == JsonValue::Type::kArray) {
    out.points = points->array;
  }
  return true;
}

/// True when the file's first non-empty line is a profile JSONL header —
/// the cheap sniff that routes --baseline/--profile paths to the right
/// parser without noisy double-parse errors.
bool looks_like_profile_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    if (!JsonParser(line).parse(value, error)) return false;
    const JsonValue* type = value.find("type");
    return type && type->type == JsonValue::Type::kString &&
           type->str == "profile";
  }
  return false;
}

bool load_profile_jsonl(const std::string& path, ProfileDoc& out) {
  std::vector<JsonValue> lines;
  if (!parse_jsonl_file(path, lines)) return false;
  bool saw_header = false;
  for (const JsonValue& line : lines) {
    const JsonValue* type = line.find("type");
    if (!type || type->type != JsonValue::Type::kString) continue;
    if (type->str == "profile") {
      saw_header = true;
      const JsonValue* backend = line.find("backend");
      if (backend && backend->type == JsonValue::Type::kString) {
        out.backend = backend->str;
      }
      const JsonValue* bench = line.find("bench");
      if (bench && bench->type == JsonValue::Type::kString) {
        out.bench = bench->str;
      }
      if (const JsonValue* env = line.find("env")) out.env = *env;
    } else if (type->str == "point") {
      if (const JsonValue* point = line.find("point")) {
        out.points.push_back(*point);
      }
    }
  }
  if (!saw_header) {
    std::cerr << "ftreport: " << path << ": no profile header line\n";
    return false;
  }
  return true;
}

/// Loads a profile from either container format.
bool load_profile_any(const std::string& path, ProfileDoc& out) {
  if (looks_like_profile_jsonl(path)) return load_profile_jsonl(path, out);
  JsonValue doc;
  if (!parse_file(path, doc)) return false;
  if (!extract_profile_block(doc, out)) {
    std::cerr << "ftreport: " << path << ": no \"profile\" block (was the"
                 " bench run with --profile?)\n";
    return false;
  }
  return true;
}

std::string env_summary(const JsonValue& env) {
  if (env.type != JsonValue::Type::kObject) return "not recorded";
  const auto str = [&](const char* key) {
    const JsonValue* v = env.find(key);
    return v && v->type == JsonValue::Type::kString ? v->str
                                                    : std::string("?");
  };
  const JsonValue* cores = env.find("cores");
  return str("cpu") + ", " + fmt(cores ? cores->num_or(0) : 0, 0) +
         " cores, compiler " + str("compiler") + ", " + str("build") +
         " build, governor " + str("governor") + ", simd " + str("simd");
}

/// Field-by-field diff of two env fingerprints. Empty when either side did
/// not record one (old artifacts) — absence is not a mismatch.
std::vector<std::string> env_mismatches(const JsonValue& base,
                                        const JsonValue& cand) {
  std::vector<std::string> diffs;
  if (base.type != JsonValue::Type::kObject ||
      cand.type != JsonValue::Type::kObject) {
    return diffs;
  }
  for (const char* key :
       {"cpu", "cores", "compiler", "build", "governor", "simd"}) {
    const JsonValue* b = base.find(key);
    const JsonValue* c = cand.find(key);
    if (!b || !c) continue;
    const std::string bs =
        b->type == JsonValue::Type::kString ? b->str : fmt(b->num_or(0), 0);
    const std::string cs =
        c->type == JsonValue::Type::kString ? c->str : fmt(c->num_or(0), 0);
    if (bs != cs) {
      diffs.push_back(std::string(key) + ": '" + bs + "' vs '" + cs + "'");
    }
  }
  return diffs;
}

void warn_env_mismatches(const JsonValue& base, const JsonValue& cand) {
  for (const std::string& diff : env_mismatches(base, cand)) {
    std::cout << "warning: baseline and candidate env differ — " << diff
              << " (comparing anyway; prefer same-box artifacts)\n";
  }
}

// --- CLI arguments ---------------------------------------------------------

struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

/// Accepts --flag=value, --flag value, and bare --flag (stored as "1").
bool parse_args(const std::vector<std::string>& argv,
                const std::vector<std::string>& value_flags, Args& out) {
  const auto takes_value = [&](const std::string& name) {
    return std::find(value_flags.begin(), value_flags.end(), name) !=
           value_flags.end();
  };
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      out.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      continue;
    }
    const std::string name = arg.substr(2);
    if (takes_value(name)) {
      if (i + 1 >= argv.size()) {
        std::cerr << "ftreport: --" << name << " needs a value\n";
        return false;
      }
      out.flags[name] = argv[++i];
    } else {
      out.flags[name] = "1";
    }
  }
  return true;
}

void usage(std::ostream& os) {
  os << "usage:\n"
     << "  ftreport report [--metrics FILE.jsonl] [--telemetry FILE.jsonl]\n"
     << "                  [--trace FILE.json] [--bench BENCH.json]\n"
     << "                  [--flight FILE.jsonl] [--profile FILE]\n"
     << "                  [--out report.md] [--csv report.csv]\n"
     << "  ftreport --baseline OLD.json --candidate NEW.json\n"
     << "           [--threshold PCT[%]] [--perf] [--min-ratio R[x]]\n"
     << "           (profile JSONL baselines gate instructions/request;\n"
     << "            --perf also gates embedded \"profile\" blocks;\n"
     << "            --min-ratio: throughput metrics must reach R x the\n"
     << "            baseline — a speedup floor, not just no-regression)\n"
     << "  ftreport anchor --degradation BENCH_degradation.json\n"
     << "           --fig9 BENCH_fig9*.json [--scheduler levelwise]\n"
     << "  ftreport quality --bench BENCH_degradation.json\n"
     << "           [--baseline-scheduler levelwise]\n"
     << "           [--candidate-scheduler levelwise-balanced]\n"
     << "           [--max-sched-drop 0.02]\n"
     << "exit: 0 ok, 1 regression/missing benchmark/anchor or quality-gate\n"
     << "      failure, 2 usage or parse error\n";
}

// --- Regression gate -------------------------------------------------------

struct Comparison {
  std::string name;    ///< benchmark identity (point + scheduler, or gbench name)
  std::string metric;  ///< which field was compared
  double baseline = 0.0;
  double candidate = 0.0;
  bool higher_is_better = true;
  bool missing = false;  ///< in baseline but absent from candidate
};

bool is_regression(const Comparison& c, double threshold_pct) {
  if (c.missing) return true;
  const double slack = threshold_pct / 100.0;
  if (c.baseline == 0.0) {
    // Nothing to lose; only a sign flip in a lower-is-better metric could
    // regress, which no producer emits.
    return false;
  }
  if (c.higher_is_better) return c.candidate < c.baseline * (1.0 - slack);
  return c.candidate > c.baseline * (1.0 + slack);
}

/// Throughput metrics are the ones a speedup floor (--min-ratio) applies
/// to: deterministic quality metrics (schedulability mean) and cost metrics
/// (instructions/request) are gated by --threshold alone.
bool is_throughput_metric(const std::string& metric) {
  return metric == "items_per_second" || metric == "requests_per_sec";
}

/// --min-ratio: candidate must reach `ratio` x baseline — the CI gate that
/// keeps an optimization's speedup, not merely its non-regression. A
/// baseline of zero (degenerate artifact) cannot impose a floor.
bool is_below_floor(const Comparison& c, double ratio) {
  if (ratio <= 0.0 || c.missing || !c.higher_is_better ||
      !is_throughput_metric(c.metric) || c.baseline == 0.0) {
    return false;
  }
  return c.candidate < c.baseline * ratio;
}

double delta_pct(const Comparison& c) {
  if (c.baseline == 0.0) return 0.0;
  return (c.candidate - c.baseline) / c.baseline * 100.0;
}

/// fig9 schema: gate every (point, scheduler) pair on the schedulability
/// mean; with `perf` also on requests_per_sec.
bool compare_fig9(const JsonValue& base, const JsonValue& cand, bool perf,
                  std::vector<Comparison>& out) {
  const JsonValue* base_points = base.find("points");
  const JsonValue* cand_points = cand.find("points");
  if (!base_points || base_points->type != JsonValue::Type::kArray ||
      !cand_points || cand_points->type != JsonValue::Type::kArray) {
    std::cerr << "ftreport: fig9 schema: missing \"points\" array\n";
    return false;
  }
  const auto point_key = [](const JsonValue& point) {
    const JsonValue* levels = point.find("levels");
    const JsonValue* arity = point.find("arity");
    return "levels=" + fmt(levels ? levels->num_or(0) : 0, 0) +
           " arity=" + fmt(arity ? arity->num_or(0) : 0, 0);
  };
  for (const JsonValue& bp : base_points->array) {
    const std::string key = point_key(bp);
    const JsonValue* cp = nullptr;
    for (const JsonValue& candidate_point : cand_points->array) {
      if (point_key(candidate_point) == key) {
        cp = &candidate_point;
        break;
      }
    }
    const JsonValue* base_scheds = bp.find("schedulers");
    if (!base_scheds || base_scheds->type != JsonValue::Type::kObject) continue;
    const JsonValue* cand_scheds = cp ? cp->find("schedulers") : nullptr;
    for (const auto& [sched, base_stats] : base_scheds->object) {
      const JsonValue* cand_stats =
          cand_scheds ? cand_scheds->find(sched) : nullptr;
      const auto emit = [&](const char* field, bool higher_better) {
        const JsonValue* bv = base_stats.find(field);
        if (!bv || bv->type != JsonValue::Type::kNumber) return;
        Comparison c;
        c.name = key + " " + sched;
        c.metric = field;
        c.baseline = bv->number;
        c.higher_is_better = higher_better;
        const JsonValue* cv = cand_stats ? cand_stats->find(field) : nullptr;
        if (!cv || cv->type != JsonValue::Type::kNumber) {
          c.missing = true;
        } else {
          c.candidate = cv->number;
        }
        out.push_back(std::move(c));
      };
      emit("mean", true);
      if (perf) emit("requests_per_sec", true);
    }
  }
  return true;
}

bool points_have_fault_rate(const JsonValue& doc) {
  const JsonValue* points = doc.find("points");
  if (!points || points->type != JsonValue::Type::kArray ||
      points->array.empty()) {
    return false;
  }
  return points->array.front().find("fault_rate") != nullptr;
}

/// Degradation schema: every (levels, arity, fault_rate) point gates on the
/// three service-level means and the recovery success ratio. All four are
/// deterministic per seed, so the default threshold is safe cross-machine.
bool compare_degradation(const JsonValue& base, const JsonValue& cand,
                         std::vector<Comparison>& out) {
  const JsonValue* base_points = base.find("points");
  const JsonValue* cand_points = cand.find("points");
  if (!base_points || base_points->type != JsonValue::Type::kArray ||
      !cand_points || cand_points->type != JsonValue::Type::kArray) {
    std::cerr << "ftreport: degradation schema: missing \"points\" array\n";
    return false;
  }
  const auto point_key = [](const JsonValue& point) {
    const JsonValue* levels = point.find("levels");
    const JsonValue* arity = point.find("arity");
    const JsonValue* rate = point.find("fault_rate");
    std::string key = "levels=" + fmt(levels ? levels->num_or(0) : 0, 0) +
                      " arity=" + fmt(arity ? arity->num_or(0) : 0, 0) +
                      " rate=" + fmt(rate ? rate->num_or(0) : 0, 2);
    // Multi-scheduler sweeps key the scheduler too; single-scheduler files
    // (no "scheduler" field) keep the legacy key, so old baselines compare.
    const JsonValue* sched = point.find("scheduler");
    if (sched && sched->type == JsonValue::Type::kString) {
      key += " scheduler=" + sched->str;
    }
    return key;
  };
  for (const JsonValue& bp : base_points->array) {
    const std::string key = point_key(bp);
    const JsonValue* cp = nullptr;
    for (const JsonValue& candidate_point : cand_points->array) {
      if (point_key(candidate_point) == key) {
        cp = &candidate_point;
        break;
      }
    }
    const auto emit_mean = [&](const char* section, bool higher_is_better) {
      const JsonValue* bs = bp.find(section);
      const JsonValue* bv = bs ? bs->find("mean") : nullptr;
      if (!bv || bv->type != JsonValue::Type::kNumber) return;
      Comparison c;
      c.name = key;
      c.metric = std::string(section) + ".mean";
      c.baseline = bv->number;
      c.higher_is_better = higher_is_better;
      const JsonValue* cs = cp ? cp->find(section) : nullptr;
      const JsonValue* cv = cs ? cs->find("mean") : nullptr;
      if (!cv || cv->type != JsonValue::Type::kNumber) {
        c.missing = true;
      } else {
        c.candidate = cv->number;
      }
      out.push_back(std::move(c));
    };
    emit_mean("schedulability", true);
    emit_mean("open_ratio", true);
    emit_mean("ever_granted", true);
    // Load-quality means are lower-is-better: a candidate that keeps the
    // same service ratios but piles its circuits onto fewer planes regresses.
    emit_mean("imbalance_max_over_mean", false);
    emit_mean("imbalance_hotspot", false);
    const JsonValue* bv = bp.find("recovery_success_ratio");
    if (bv && bv->type == JsonValue::Type::kNumber) {
      Comparison c;
      c.name = key;
      c.metric = "recovery_success_ratio";
      c.baseline = bv->number;
      const JsonValue* cv = cp ? cp->find("recovery_success_ratio") : nullptr;
      if (!cv || cv->type != JsonValue::Type::kNumber) {
        c.missing = true;
      } else {
        c.candidate = cv->number;
      }
      out.push_back(std::move(c));
    }
  }
  return true;
}

/// google-benchmark schema: gate on items_per_second when both sides have
/// it, otherwise real_time.
bool compare_gbench(const JsonValue& base, const JsonValue& cand,
                    std::vector<Comparison>& out) {
  const JsonValue* base_benches = base.find("benchmarks");
  const JsonValue* cand_benches = cand.find("benchmarks");
  if (!base_benches || base_benches->type != JsonValue::Type::kArray ||
      !cand_benches || cand_benches->type != JsonValue::Type::kArray) {
    std::cerr << "ftreport: google-benchmark schema: missing \"benchmarks\"\n";
    return false;
  }
  for (const JsonValue& bb : base_benches->array) {
    const JsonValue* bname = bb.find("name");
    if (!bname || bname->type != JsonValue::Type::kString) continue;
    // Aggregate rows (mean/median/stddev repetitions) carry run_type
    // "aggregate"; plain runs compare directly.
    const JsonValue* cb = nullptr;
    for (const JsonValue& candidate_bench : cand_benches->array) {
      const JsonValue* cname = candidate_bench.find("name");
      if (cname && cname->type == JsonValue::Type::kString &&
          cname->str == bname->str) {
        cb = &candidate_bench;
        break;
      }
    }
    Comparison c;
    c.name = bname->str;
    const JsonValue* base_items = bb.find("items_per_second");
    const JsonValue* cand_items = cb ? cb->find("items_per_second") : nullptr;
    if (base_items && base_items->type == JsonValue::Type::kNumber &&
        (!cb || (cand_items && cand_items->type == JsonValue::Type::kNumber))) {
      c.metric = "items_per_second";
      c.higher_is_better = true;
      c.baseline = base_items->number;
      if (cand_items) c.candidate = cand_items->number;
      c.missing = cb == nullptr;
    } else {
      const JsonValue* base_time = bb.find("real_time");
      if (!base_time || base_time->type != JsonValue::Type::kNumber) continue;
      c.metric = "real_time";
      c.higher_is_better = false;
      c.baseline = base_time->number;
      const JsonValue* cand_time = cb ? cb->find("real_time") : nullptr;
      if (cand_time && cand_time->type == JsonValue::Type::kNumber) {
        c.candidate = cand_time->number;
      } else {
        c.missing = true;
      }
    }
    out.push_back(std::move(c));
  }
  return true;
}

/// Profile gate: instructions retired per scheduled request, per point
/// label. Returns false when the gate was skipped because either side lacks
/// perf_event data — the caller treats "skipped" as pass, never as the
/// empty-baseline usage error.
bool compare_profile(const ProfileDoc& base, const ProfileDoc& cand,
                     std::vector<Comparison>& out) {
  warn_env_mismatches(base.env, cand.env);
  if (base.backend != "perf_event" || cand.backend != "perf_event") {
    std::cout << "warning: instructions-per-request gate skipped — needs the"
                 " perf_event backend on both sides (baseline: "
              << (base.backend.empty() ? "none" : base.backend)
              << ", candidate: "
              << (cand.backend.empty() ? "none" : cand.backend) << ")\n";
    return false;
  }
  for (const JsonValue& bp : base.points) {
    const JsonValue* blabel = bp.find("label");
    if (!blabel || blabel->type != JsonValue::Type::kString) continue;
    const JsonValue* bderived = bp.find("derived");
    const JsonValue* bv =
        bderived ? bderived->find("instructions_per_request") : nullptr;
    if (!bv || bv->type != JsonValue::Type::kNumber) continue;
    Comparison c;
    c.name = blabel->str;
    c.metric = "instructions_per_request";
    c.higher_is_better = false;
    c.baseline = bv->number;
    const JsonValue* cp = nullptr;
    for (const JsonValue& candidate_point : cand.points) {
      const JsonValue* clabel = candidate_point.find("label");
      if (clabel && clabel->type == JsonValue::Type::kString &&
          clabel->str == blabel->str) {
        cp = &candidate_point;
        break;
      }
    }
    const JsonValue* cderived = cp ? cp->find("derived") : nullptr;
    const JsonValue* cv =
        cderived ? cderived->find("instructions_per_request") : nullptr;
    if (!cv || cv->type != JsonValue::Type::kNumber) {
      c.missing = true;
    } else {
      c.candidate = cv->number;
    }
    out.push_back(std::move(c));
  }
  return true;
}

int run_regression(const Args& args) {
  const auto base_it = args.flags.find("baseline");
  const auto cand_it = args.flags.find("candidate");
  if (base_it == args.flags.end() || cand_it == args.flags.end()) {
    usage(std::cerr);
    return 2;
  }
  double threshold = 5.0;
  if (const auto it = args.flags.find("threshold"); it != args.flags.end()) {
    std::string t = it->second;
    if (!t.empty() && t.back() == '%') t.pop_back();
    char* end = nullptr;
    threshold = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size() || threshold < 0.0) {
      std::cerr << "ftreport: bad --threshold '" << it->second << "'\n";
      return 2;
    }
  }
  const bool perf = args.flags.count("perf") > 0;
  double min_ratio = 0.0;  // 0 = floor disabled
  if (const auto it = args.flags.find("min-ratio"); it != args.flags.end()) {
    std::string t = it->second;
    if (!t.empty() && (t.back() == 'x' || t.back() == 'X')) t.pop_back();
    char* end = nullptr;
    min_ratio = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size() || min_ratio <= 0.0) {
      std::cerr << "ftreport: bad --min-ratio '" << it->second << "'\n";
      return 2;
    }
  }

  std::vector<Comparison> comparisons;
  bool profile_skipped = false;
  if (looks_like_profile_jsonl(base_it->second)) {
    // Profile-vs-profile: the instructions gate is the whole comparison.
    ProfileDoc base_prof, cand_prof;
    if (!load_profile_jsonl(base_it->second, base_prof)) return 2;
    if (!load_profile_any(cand_it->second, cand_prof)) return 2;
    profile_skipped = !compare_profile(base_prof, cand_prof, comparisons);
  } else {
    JsonValue base, cand;
    if (!parse_file(base_it->second, base) ||
        !parse_file(cand_it->second, cand)) {
      return 2;
    }
    const JsonValue* base_env = base.find("env");
    const JsonValue* cand_env = cand.find("env");
    if (base_env && cand_env) warn_env_mismatches(*base_env, *cand_env);

    if (points_have_fault_rate(base)) {
      if (!compare_degradation(base, cand, comparisons)) return 2;
    } else if (base.find("points")) {
      if (!compare_fig9(base, cand, perf, comparisons)) return 2;
    } else if (base.find("benchmarks")) {
      if (!compare_gbench(base, cand, comparisons)) return 2;
    } else {
      std::cerr << "ftreport: " << base_it->second
                << ": neither fig9 (\"points\") nor google-benchmark"
                   " (\"benchmarks\") schema\n";
      return 2;
    }
    // --perf: also gate any embedded profile block the baseline carries.
    ProfileDoc base_prof;
    if (perf && extract_profile_block(base, base_prof)) {
      ProfileDoc cand_prof;
      if (!extract_profile_block(cand, cand_prof)) {
        // Candidate bench ran without --profile. Pretend it has perf_event
        // data and no points: a perf_event baseline then reports every
        // point MISSING (fail), while a timer baseline skips as usual.
        cand_prof.backend = "perf_event";
      }
      profile_skipped = !compare_profile(base_prof, cand_prof, comparisons);
    }
  }
  if (comparisons.empty()) {
    if (profile_skipped) {
      std::cout << "PASS (instructions-per-request gate skipped:"
                   " no perf_event data)\n";
      return 0;
    }
    std::cerr << "ftreport: baseline contains no comparable benchmarks\n";
    return 2;
  }

  std::cout << "# Bench regression gate\n\n"
            << "baseline:  " << base_it->second << "\n"
            << "candidate: " << cand_it->second << "\n"
            << "threshold: " << fmt(threshold, 2) << "%\n";
  if (min_ratio > 0.0) {
    std::cout << "floor:     " << fmt(min_ratio, 2)
              << "x baseline (throughput metrics)\n";
  }
  std::cout << "\n"
            << "| benchmark | metric | baseline | candidate | delta | status |\n"
            << "|---|---|---:|---:|---:|---|\n";
  std::size_t regressions = 0;
  for (const Comparison& c : comparisons) {
    const bool regressed = is_regression(c, threshold);
    const bool below_floor = is_below_floor(c, min_ratio);
    const bool bad = regressed || below_floor;
    if (bad) ++regressions;
    const char* status = c.missing          ? "MISSING"
                         : regressed        ? "REGRESSED"
                         : below_floor      ? "BELOW-FLOOR"
                                            : "ok";
    std::cout << "| " << c.name << " | " << c.metric << " | "
              << fmt(c.baseline) << " | "
              << (c.missing ? std::string("-") : fmt(c.candidate)) << " | "
              << (c.missing ? std::string("-") : fmt(delta_pct(c), 2) + "%")
              << " | " << status << " |\n";
  }
  std::cout << "\n"
            << (comparisons.size() - regressions) << "/" << comparisons.size()
            << " benchmarks within threshold\n";
  if (regressions > 0) {
    std::cout << "FAIL: " << regressions << " regression"
              << (regressions == 1 ? "" : "s") << " detected\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

// --- Report mode -----------------------------------------------------------

/// Flat CSV sink: section,key,value — one row per fact the Markdown report
/// states, for spreadsheet ingestion.
struct CsvSink {
  std::ostringstream rows;
  void add(const std::string& section, const std::string& key, double value) {
    rows << section << "," << key << "," << fmt(value, 6) << "\n";
  }
};

/// Hot-path profile section: derived per-request costs per point, then each
/// point's per-(phase, level) self-cost attribution as a share of the
/// session total (self times sum exactly to the total minus the
/// unattributed tail — the profiler's reconciliation invariant).
void report_profile(const ProfileDoc& prof, std::ostream& md, CsvSink& csv) {
  md << "## Hot-path profile\n\n";
  md << "backend `" << (prof.backend.empty() ? "?" : prof.backend) << "`";
  if (!prof.bench.empty()) md << ", bench `" << prof.bench << "`";
  md << "; env: " << env_summary(prof.env) << "\n\n";
  if (prof.backend != "perf_event") {
    md << "_timer backend: hardware counters unavailable, instruction and"
          " cycle columns are zero._\n\n";
  }
  if (prof.points.empty()) {
    md << "_no profile points_\n\n";
    return;
  }
  const auto derived_of = [](const JsonValue& point, const char* key) {
    const JsonValue* derived = point.find("derived");
    const JsonValue* v = derived ? derived->find(key) : nullptr;
    return v ? v->num_or(0.0) : 0.0;
  };
  const auto sample_field = [](const JsonValue* sample, const char* key) {
    const JsonValue* v = sample ? sample->find(key) : nullptr;
    return v ? v->num_or(0.0) : 0.0;
  };
  md << "| point | requests | wall ns/req | instr/req | IPC |"
        " L1d miss/req | unattributed |\n"
     << "|---|---:|---:|---:|---:|---:|---:|\n";
  for (const JsonValue& point : prof.points) {
    const JsonValue* label = point.find("label");
    const std::string name =
        label && label->type == JsonValue::Type::kString ? label->str : "?";
    const JsonValue* requests = point.find("requests");
    const double total_wall = sample_field(point.find("total"), "wall_ns");
    const double unattributed_wall =
        sample_field(point.find("unattributed"), "wall_ns");
    md << "| " << name << " | " << fmt(requests ? requests->num_or(0) : 0, 0)
       << " | " << fmt(derived_of(point, "wall_ns_per_request"), 1) << " | "
       << fmt(derived_of(point, "instructions_per_request"), 1) << " | "
       << fmt(derived_of(point, "ipc"), 2) << " | "
       << fmt(derived_of(point, "l1d_misses_per_request"), 2) << " | "
       << (total_wall > 0 ? fmt_pct(unattributed_wall / total_wall)
                          : std::string("-"))
       << " |\n";
    csv.add("profile", name + ".wall_ns_per_request",
            derived_of(point, "wall_ns_per_request"));
    csv.add("profile", name + ".instructions_per_request",
            derived_of(point, "instructions_per_request"));
    csv.add("profile", name + ".ipc", derived_of(point, "ipc"));
  }
  md << "\n";
  for (const JsonValue& point : prof.points) {
    const JsonValue* label = point.find("label");
    const std::string name =
        label && label->type == JsonValue::Type::kString ? label->str : "?";
    const JsonValue* phases = point.find("phases");
    if (!phases || phases->type != JsonValue::Type::kArray ||
        phases->array.empty()) {
      continue;
    }
    const double total_wall = sample_field(point.find("total"), "wall_ns");
    md << "### " << name << " — cost by phase and level\n\n"
       << "| phase | level | entries | wall (us) | share |\n"
       << "|---|---:|---:|---:|---:|\n";
    for (const JsonValue& slot : phases->array) {
      const JsonValue* phase = slot.find("phase");
      const std::string phase_name =
          phase && phase->type == JsonValue::Type::kString ? phase->str : "?";
      const double level = slot.find("level")
                               ? slot.find("level")->num_or(0)
                               : 0;
      const double entries = slot.find("entries")
                                 ? slot.find("entries")->num_or(0)
                                 : 0;
      const double wall = sample_field(slot.find("self"), "wall_ns");
      md << "| " << phase_name << " | " << fmt(level, 0) << " | "
         << fmt(entries, 0) << " | " << fmt(wall / 1000.0, 1) << " | "
         << (total_wall > 0 ? fmt_pct(wall / total_wall) : std::string("-"))
         << " |\n";
      csv.add("profile", name + "." + phase_name + ".level" + fmt(level, 0) +
                             ".wall_ns",
              wall);
    }
    md << "\n";
  }
}

void report_bench(const JsonValue& bench, std::ostream& md, CsvSink& csv) {
  md << "## Schedulability (bench sweep)\n\n";
  const JsonValue* name = bench.find("bench");
  const JsonValue* reps = bench.find("reps");
  if (name && name->type == JsonValue::Type::kString) {
    md << "bench `" << name->str << "`";
    if (reps) md << ", " << fmt(reps->num_or(0), 0) << " repetitions";
    md << "\n\n";
  }
  const JsonValue* points = bench.find("points");
  if (!points || points->type != JsonValue::Type::kArray ||
      points->array.empty()) {
    md << "_no sweep points_\n\n";
    return;
  }
  // Column set = union of scheduler names across points, in first-seen order.
  std::vector<std::string> scheds;
  for (const JsonValue& point : points->array) {
    if (const JsonValue* s = point.find("schedulers")) {
      for (const auto& [sched_name, stats] : s->object) {
        (void)stats;
        if (std::find(scheds.begin(), scheds.end(), sched_name) ==
            scheds.end()) {
          scheds.push_back(sched_name);
        }
      }
    }
  }
  md << "| nodes | levels | arity |";
  for (const std::string& s : scheds) md << " " << s << " |";
  md << "\n|---:|---:|---:|";
  for (std::size_t i = 0; i < scheds.size(); ++i) md << "---:|";
  md << "\n";
  for (const JsonValue& point : points->array) {
    const double nodes = point.find("nodes") ? point.find("nodes")->num_or(0) : 0;
    const double levels = point.find("levels") ? point.find("levels")->num_or(0) : 0;
    const double arity = point.find("arity") ? point.find("arity")->num_or(0) : 0;
    md << "| " << fmt(nodes, 0) << " | " << fmt(levels, 0) << " | "
       << fmt(arity, 0) << " |";
    const JsonValue* s = point.find("schedulers");
    for (const std::string& sched : scheds) {
      const JsonValue* stats = s ? s->find(sched) : nullptr;
      const JsonValue* mean = stats ? stats->find("mean") : nullptr;
      if (mean && mean->type == JsonValue::Type::kNumber) {
        md << " " << fmt(mean->number) << " |";
        csv.add("bench", "levels" + fmt(levels, 0) + ".arity" + fmt(arity, 0) +
                             "." + sched + ".mean",
                mean->number);
      } else {
        md << " - |";
      }
    }
    md << "\n";
  }
  md << "\n";
}

/// Degradation sweep: one row per (topology, fault rate) with the three
/// service levels, recovery counters, and retry-latency percentiles.
void report_degradation(const JsonValue& bench, std::ostream& md,
                        CsvSink& csv) {
  md << "## Fault degradation sweep\n\n";
  const JsonValue* reps = bench.find("reps");
  const JsonValue* horizon = bench.find("horizon");
  const JsonValue* retry = bench.find("retry");
  md << "bench `degradation`";
  if (reps) md << ", " << fmt(reps->num_or(0), 0) << " repetitions";
  if (horizon) md << ", horizon " << fmt(horizon->num_or(0), 0);
  if (retry && retry->type == JsonValue::Type::kString) {
    md << ", retry `" << retry->str << "`";
  }
  md << "\n\n";
  const JsonValue* points = bench.find("points");
  if (!points || points->type != JsonValue::Type::kArray ||
      points->array.empty()) {
    md << "_no sweep points_\n\n";
    return;
  }
  const auto scheduler_of = [](const JsonValue& point) {
    const JsonValue* s = point.find("scheduler");
    return s && s->type == JsonValue::Type::kString ? s->str
                                                    : std::string("levelwise");
  };
  md << "| nodes | scheduler | rate | first-attempt | open | ever granted |"
        " victims | recovered | recovery | retry p50/p90/p99 |\n"
        "|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  bool have_imbalance = false;
  for (const JsonValue& point : points->array) {
    const auto num = [&](const char* key) {
      const JsonValue* v = point.find(key);
      return v ? v->num_or(0.0) : 0.0;
    };
    const auto mean_of = [&](const char* section) {
      const JsonValue* s = point.find(section);
      const JsonValue* m = s ? s->find("mean") : nullptr;
      return m ? m->num_or(0.0) : 0.0;
    };
    if (point.find("imbalance_hotspot")) have_imbalance = true;
    const double rate = num("fault_rate");
    const std::string key_prefix =
        "levels" + fmt(num("levels"), 0) + ".arity" + fmt(num("arity"), 0) +
        "." + scheduler_of(point) + ".rate" + fmt(rate, 2);
    md << "| " << fmt(num("nodes"), 0) << " | " << scheduler_of(point)
       << " | " << fmt(rate, 2) << " | "
       << fmt_pct(mean_of("schedulability")) << " | "
       << fmt_pct(mean_of("open_ratio")) << " | "
       << fmt_pct(mean_of("ever_granted")) << " | " << fmt(num("victims"), 0)
       << " | " << fmt(num("recovered"), 0) << " | "
       << fmt_pct(num("recovery_success_ratio")) << " | ";
    const JsonValue* lat = point.find("retry_latency");
    const JsonValue* lat_count = lat ? lat->find("count") : nullptr;
    if (lat && lat_count && lat_count->num_or(0) > 0) {
      md << fmt(lat->find("p50") ? lat->find("p50")->num_or(0) : 0, 1) << "/"
         << fmt(lat->find("p90") ? lat->find("p90")->num_or(0) : 0, 1) << "/"
         << fmt(lat->find("p99") ? lat->find("p99")->num_or(0) : 0, 1);
    } else {
      md << "-";
    }
    md << " |\n";
    csv.add("degradation", key_prefix + ".schedulability",
            mean_of("schedulability"));
    csv.add("degradation", key_prefix + ".open_ratio", mean_of("open_ratio"));
    csv.add("degradation", key_prefix + ".ever_granted",
            mean_of("ever_granted"));
    csv.add("degradation", key_prefix + ".recovery_success_ratio",
            num("recovery_success_ratio"));
  }
  md << "\n";

  // Load quality of the residual fabric at the horizon: how evenly the
  // surviving planes carry the open circuits. 1.000x = perfectly even;
  // the policy comparison the quality gate (ftreport quality) automates.
  if (have_imbalance) {
    md << "### Degradation quality\n\n"
          "Residual-fabric load imbalance at the horizon (lower is better;"
          " 1.000x = even). `hotspot` is the worst subtree plane's occupancy"
          " over the mean plane; `max/mean` and `CoV` are per-switch"
          " statistics of the worst level and direction.\n\n"
          "| nodes | scheduler | rate | max/mean | CoV | hotspot |\n"
          "|---:|---|---:|---:|---:|---:|\n";
    for (const JsonValue& point : points->array) {
      const auto num = [&](const char* key) {
        const JsonValue* v = point.find(key);
        return v ? v->num_or(0.0) : 0.0;
      };
      const auto mean_of = [&](const char* section) {
        const JsonValue* s = point.find(section);
        const JsonValue* m = s ? s->find("mean") : nullptr;
        return m ? m->num_or(0.0) : 0.0;
      };
      const double rate = num("fault_rate");
      const std::string key_prefix =
          "levels" + fmt(num("levels"), 0) + ".arity" + fmt(num("arity"), 0) +
          "." + scheduler_of(point) + ".rate" + fmt(rate, 2);
      md << "| " << fmt(num("nodes"), 0) << " | " << scheduler_of(point)
         << " | " << fmt(rate, 2) << " | "
         << fmt(mean_of("imbalance_max_over_mean"), 3) << "x | "
         << fmt(mean_of("imbalance_cov"), 3) << " | "
         << fmt(mean_of("imbalance_hotspot"), 3) << "x |\n";
      csv.add("degradation", key_prefix + ".imbalance_max_over_mean",
              mean_of("imbalance_max_over_mean"));
      csv.add("degradation", key_prefix + ".imbalance_cov",
              mean_of("imbalance_cov"));
      csv.add("degradation", key_prefix + ".imbalance_hotspot",
              mean_of("imbalance_hotspot"));
    }
    md << "\n";
  }
}

/// Chaos soak summary ({"bench":"chaos_soak"}). Returns false when the
/// artifact records an invariant violation — the caller exits 2 so a CI
/// soak job fails even if the report itself rendered fine.
bool report_chaos_soak(const JsonValue& bench, std::ostream& md,
                       CsvSink& csv) {
  md << "## Chaos soak\n\n";
  const auto num = [&](const char* key) {
    const JsonValue* v = bench.find(key);
    return v ? v->num_or(0.0) : 0.0;
  };
  const auto str = [&](const char* key) {
    const JsonValue* v = bench.find(key);
    return v && v->type == JsonValue::Type::kString ? v->str : std::string();
  };
  const JsonValue* ok_value = bench.find("ok");
  const bool ok = ok_value && ok_value->type == JsonValue::Type::kBool &&
                  ok_value->boolean;
  md << "scheduler `" << str("scheduler") << "` on FT(" << fmt(num("levels"), 0)
     << "," << fmt(num("m"), 0) << "," << fmt(num("w"), 0) << "), seed "
     << fmt(num("seed"), 0) << ", " << fmt(num("ops"), 0)
     << " ops, invariant epoch " << fmt(num("epoch"), 0) << "\n\n";
  md << "| counter | value |\n|---|---:|\n"
     << "| executed ops | " << fmt(num("executed"), 0) << " |\n"
     << "| skipped ops | " << fmt(num("skipped"), 0) << " |\n"
     << "| invariant epochs | " << fmt(num("epochs"), 0) << " |\n"
     << "| submitted | " << fmt(num("submitted"), 0) << " |\n"
     << "| grants | " << fmt(num("grants"), 0) << " |\n"
     << "| closed | " << fmt(num("closed"), 0) << " |\n"
     << "| open at end | " << fmt(num("open_at_end"), 0) << " |\n"
     << "| fail / repair events | " << fmt(num("fail_events"), 0) << " / "
     << fmt(num("repair_events"), 0) << " |\n"
     << "| victims / recovered | " << fmt(num("victims"), 0) << " / "
     << fmt(num("recovered"), 0) << " |\n"
     << "| retries / shed | " << fmt(num("retries"), 0) << " / "
     << fmt(num("shed"), 0) << " |\n\n";
  for (const char* key :
       {"executed", "skipped", "epochs", "submitted", "grants", "closed",
        "open_at_end", "fail_events", "repair_events", "victims", "recovered",
        "retries", "shed"}) {
    csv.add("soak", key, num(key));
  }
  csv.add("soak", "ok", ok ? 1.0 : 0.0);
  if (ok) {
    md << "verdict: **PASS** — invariants clean at every epoch\n\n";
  } else {
    md << "verdict: **FAIL** after " << fmt(num("violation_op"), 0)
       << " executed ops: " << str("violation") << "\n\n";
    if (num("reproducer_ops") > 0) {
      md << "minimal reproducer: " << fmt(num("reproducer_ops"), 0)
         << " ops (shrunk in " << fmt(num("shrink_runs"), 0)
         << " replays); replay with `ftsched soak --replay=...`\n\n";
    }
  }
  return ok;
}

void report_metrics(const std::vector<JsonValue>& lines, std::ostream& md,
                    CsvSink& csv) {
  md << "## Scheduler metrics\n\n";
  const auto value_of = [&](std::string_view metric) -> const JsonValue* {
    for (const JsonValue& line : lines) {
      const JsonValue* name = line.find("metric");
      if (name && name->type == JsonValue::Type::kString &&
          name->str == metric) {
        return line.find("value");
      }
    }
    return nullptr;
  };
  const auto counter = [&](std::string_view metric) {
    const JsonValue* v = value_of(metric);
    return v ? v->num_or(0.0) : 0.0;
  };

  const double requests = counter("sched.requests");
  const double grants = counter("sched.grants");
  const double rejects = counter("sched.rejects");
  md << "| total | value |\n|---|---:|\n"
     << "| batches | " << fmt(counter("sched.batches"), 0) << " |\n"
     << "| requests | " << fmt(requests, 0) << " |\n"
     << "| grants | " << fmt(grants, 0) << " |\n"
     << "| rejects | " << fmt(rejects, 0) << " |\n";
  if (requests > 0) {
    md << "| schedulability | " << fmt_pct(grants / requests) << " |\n";
    csv.add("metrics", "schedulability", grants / requests);
  }
  md << "\n";
  csv.add("metrics", "requests", requests);
  csv.add("metrics", "grants", grants);
  csv.add("metrics", "rejects", rejects);

  // Prefix-grouped breakdowns straight off the metric names.
  const auto breakdown = [&](const std::string& prefix,
                             const std::string& title,
                             const std::string& csv_prefix) {
    std::vector<std::pair<std::string, double>> items;
    for (const JsonValue& line : lines) {
      const JsonValue* name = line.find("metric");
      if (!name || name->type != JsonValue::Type::kString) continue;
      if (name->str.rfind(prefix, 0) != 0) continue;
      const std::string label = name->str.substr(prefix.size());
      // Keep flat children only — "sched.reject.level0" yes,
      // "sched.reject.reason.x" is a different prefix's child.
      if (label.find('.') != std::string::npos) continue;
      const JsonValue* v = line.find("value");
      items.emplace_back(label, v ? v->num_or(0.0) : 0.0);
    }
    if (items.empty()) return;
    md << "### " << title << "\n\n| key | count | share |\n|---|---:|---:|\n";
    double total = 0;
    for (const auto& [label, v] : items) total += v;
    for (const auto& [label, v] : items) {
      md << "| " << label << " | " << fmt(v, 0) << " | "
         << (total > 0 ? fmt_pct(v / total) : "-") << " |\n";
      csv.add("metrics", csv_prefix + "." + label, v);
    }
    md << "\n";
  };
  breakdown("sched.reject.level", "Rejections by level (level of first failure)",
            "reject.level");
  breakdown("sched.reject.reason.", "Rejections by reason", "reject.reason");
  breakdown("sched.grant.ancestor", "Grants by common-ancestor level",
            "grant.ancestor");

  // Fault-recovery counters exported by FabricManager, if present.
  const double submitted = counter("fault.submitted");
  if (submitted > 0) {
    const double victims = counter("fault.victims");
    const double recovered = counter("fault.recovered");
    md << "### Fault recovery (FabricManager)\n\n| counter | value |\n"
          "|---|---:|\n"
       << "| submitted | " << fmt(submitted, 0) << " |\n"
       << "| first-attempt granted | "
       << fmt(counter("fault.first_attempt_granted"), 0) << " |\n"
       << "| ever granted | " << fmt(counter("fault.ever_granted"), 0)
       << " |\n"
       << "| open at end | " << fmt(counter("fault.open_circuits"), 0)
       << " |\n"
       << "| fail / repair events | " << fmt(counter("fault.fail_events"), 0)
       << " / " << fmt(counter("fault.repair_events"), 0) << " |\n"
       << "| victims | " << fmt(victims, 0) << " |\n"
       << "| recovered | " << fmt(recovered, 0) << " |\n"
       << "| retries | " << fmt(counter("fault.retries"), 0) << " |\n"
       << "| shed / permanent / abandoned | "
       << fmt(counter("fault.shed"), 0) << " / "
       << fmt(counter("fault.permanent_rejects"), 0) << " / "
       << fmt(counter("fault.abandoned"), 0) << " |\n";
    if (victims > 0) {
      md << "| recovery success | " << fmt_pct(recovered / victims) << " |\n";
      csv.add("metrics", "fault.recovery_success", recovered / victims);
    }
    md << "\n";
    csv.add("metrics", "fault.submitted", submitted);
    csv.add("metrics", "fault.victims", victims);
    csv.add("metrics", "fault.recovered", recovered);
  }

  // Fabric utilization gauges exported by LinkTelemetry, if present.
  std::vector<std::pair<std::string, double>> fabric;
  for (const JsonValue& line : lines) {
    const JsonValue* name = line.find("metric");
    if (!name || name->type != JsonValue::Type::kString) continue;
    if (name->str.rfind("fabric.util.", 0) != 0) continue;
    const JsonValue* v = line.find("value");
    fabric.emplace_back(name->str.substr(12), v ? v->num_or(0.0) : 0.0);
  }
  if (!fabric.empty()) {
    md << "### Fabric utilization (from metrics export)\n\n"
       << "| level.dir | utilization |\n|---|---:|\n";
    for (const auto& [label, v] : fabric) {
      md << "| " << label << " | " << fmt_pct(v) << " |\n";
      csv.add("metrics", "fabric.util." + label, v);
    }
    md << "\n";
  }
}

void report_telemetry(const std::vector<JsonValue>& lines, std::ostream& md,
                      CsvSink& csv) {
  md << "## Fabric link telemetry\n\n";
  const JsonValue* header = nullptr;
  std::vector<const JsonValue*> samples;
  const JsonValue* utilization = nullptr;
  std::vector<const JsonValue*> saturations;
  const JsonValue* top = nullptr;
  for (const JsonValue& line : lines) {
    const JsonValue* type = line.find("type");
    if (!type || type->type != JsonValue::Type::kString) continue;
    if (type->str == "link_telemetry") header = &line;
    else if (type->str == "sample") samples.push_back(&line);
    else if (type->str == "utilization") utilization = &line;
    else if (type->str == "saturation") saturations.push_back(&line);
    else if (type->str == "top_contended") top = &line;
  }
  if (!header) {
    md << "_no link_telemetry header line_\n\n";
    return;
  }
  const JsonValue* levels = header->find("levels");
  const std::size_t level_count =
      levels && levels->type == JsonValue::Type::kArray ? levels->array.size()
                                                        : 0;
  const JsonValue* total = header->find("samples");
  md << fmt(total ? total->num_or(0) : 0, 0) << " samples, " << level_count
     << " link levels\n\n";

  // Channel capacity per level (rows * ports) normalizes occupied counts.
  std::vector<double> capacity(level_count, 0.0);
  for (std::size_t h = 0; h < level_count; ++h) {
    const JsonValue& shape = levels->array[h];
    const JsonValue* rows = shape.find("rows");
    const JsonValue* ports = shape.find("ports");
    capacity[h] = (rows ? rows->num_or(0) : 0) * (ports ? ports->num_or(0) : 0);
  }

  if (utilization) {
    md << "### Utilization by level\n\n"
       << "| level | up | down |\n|---:|---:|---:|\n";
    const JsonValue* up = utilization->find("u");
    const JsonValue* down = utilization->find("d");
    for (std::size_t h = 0; h < level_count; ++h) {
      const double u = up && h < up->array.size() ? up->array[h].num_or(0) : 0;
      const double d =
          down && h < down->array.size() ? down->array[h].num_or(0) : 0;
      md << "| " << h << " | " << fmt_pct(u) << " | " << fmt_pct(d) << " |\n";
      csv.add("telemetry", "util.level" + std::to_string(h) + ".up", u);
      csv.add("telemetry", "util.level" + std::to_string(h) + ".down", d);
    }
    md << "\n";
  }

  // Level x stage heatmap: the sample series cut into ten equal stages,
  // mean occupancy fraction (up + down over both capacities) per cell.
  if (!samples.empty()) {
    const std::size_t stages = std::min<std::size_t>(10, samples.size());
    std::vector<std::vector<double>> sum(level_count,
                                         std::vector<double>(stages, 0.0));
    std::vector<std::size_t> stage_n(stages, 0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const std::size_t stage = i * stages / samples.size();
      ++stage_n[stage];
      const JsonValue* up = samples[i]->find("u");
      const JsonValue* down = samples[i]->find("d");
      for (std::size_t h = 0; h < level_count; ++h) {
        double occupied = 0.0, cap = 0.0;
        if (up && h < up->array.size()) {
          occupied += up->array[h].num_or(0);
          cap += capacity[h];
        }
        if (down && h < down->array.size()) {
          occupied += down->array[h].num_or(0);
          cap += capacity[h];
        }
        if (cap > 0) sum[h][stage] += occupied / cap;
      }
    }
    md << "### Occupancy heatmap (level x stage)\n\n"
       << "Stages are tenths of the sampled window; cells show mean fabric"
          " fill (`#### ` >= 80%, `.    ` < 20%).\n\n| level |";
    for (std::size_t s = 0; s < stages; ++s) md << " s" << s << " |";
    md << "\n|---:|";
    for (std::size_t s = 0; s < stages; ++s) md << "---|";
    md << "\n";
    for (std::size_t h = 0; h < level_count; ++h) {
      md << "| " << h << " |";
      for (std::size_t s = 0; s < stages; ++s) {
        const double mean = stage_n[s] ? sum[h][s] / static_cast<double>(stage_n[s]) : 0.0;
        md << " " << shade(mean) << "|";
        csv.add("telemetry",
                "heat.level" + std::to_string(h) + ".s" + std::to_string(s),
                mean);
      }
      md << "\n";
    }
    md << "\n";
  }

  if (!saturations.empty()) {
    md << "### Saturation histograms (occupied channels per row sample)\n\n"
       << "| level | dir | bins (occ0..occN) |\n|---:|---|---|\n";
    for (const JsonValue* s : saturations) {
      const JsonValue* level = s->find("level");
      const JsonValue* dir = s->find("dir");
      const JsonValue* bins = s->find("bins");
      md << "| " << fmt(level ? level->num_or(0) : 0, 0) << " | "
         << (dir && dir->type == JsonValue::Type::kString ? dir->str : "?")
         << " | ";
      if (bins && bins->type == JsonValue::Type::kArray) {
        for (std::size_t i = 0; i < bins->array.size(); ++i) {
          if (i) md << " ";
          md << fmt(bins->array[i].num_or(0), 0);
        }
      }
      md << " |\n";
    }
    md << "\n";
  }

  if (top) {
    const JsonValue* links = top->find("links");
    if (links && links->type == JsonValue::Type::kArray &&
        !links->array.empty()) {
      md << "### Most contended links\n\n"
         << "| level | row | port | dir | busy samples |\n"
         << "|---:|---:|---:|---|---:|\n";
      for (const JsonValue& link : links->array) {
        md << "| " << fmt(link.find("level") ? link.find("level")->num_or(0) : 0, 0)
           << " | " << fmt(link.find("row") ? link.find("row")->num_or(0) : 0, 0)
           << " | " << fmt(link.find("port") ? link.find("port")->num_or(0) : 0, 0)
           << " | "
           << (link.find("dir") &&
                       link.find("dir")->type == JsonValue::Type::kString
                   ? link.find("dir")->str
                   : "?")
           << " | " << fmt(link.find("busy") ? link.find("busy")->num_or(0) : 0, 0)
           << " |\n";
      }
      md << "\n";
    }
  }
}

void report_trace(const JsonValue& trace, std::ostream& md, CsvSink& csv) {
  md << "## Trace span rollups\n\n";
  const JsonValue* events = trace.find("traceEvents");
  if (!events || events->type != JsonValue::Type::kArray) {
    md << "_no traceEvents array_\n\n";
    return;
  }
  struct Rollup {
    std::size_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Rollup> spans;
  std::size_t instants = 0, counters = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    if (!ph || ph->type != JsonValue::Type::kString) continue;
    if (ph->str == "i" || ph->str == "I") {
      ++instants;
      continue;
    }
    if (ph->str == "C") {
      ++counters;
      continue;
    }
    if (ph->str != "X") continue;
    const JsonValue* name = event.find("name");
    const JsonValue* dur = event.find("dur");
    if (!name || name->type != JsonValue::Type::kString) continue;
    Rollup& r = spans[name->str];
    ++r.count;
    const double d = dur ? dur->num_or(0.0) : 0.0;
    r.total_us += d;
    r.max_us = std::max(r.max_us, d);
  }
  if (spans.empty()) {
    md << "_no duration spans_\n\n";
    return;
  }
  // Sort by total time, heaviest first.
  std::vector<std::pair<std::string, Rollup>> rows(spans.begin(), spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) {
      return a.second.total_us > b.second.total_us;
    }
    return a.first < b.first;
  });
  md << "| span | count | total (us) | mean (us) | max (us) |\n"
     << "|---|---:|---:|---:|---:|\n";
  for (const auto& [name, r] : rows) {
    md << "| " << name << " | " << r.count << " | " << fmt(r.total_us, 1)
       << " | " << fmt(r.total_us / static_cast<double>(r.count), 2) << " | "
       << fmt(r.max_us, 1) << " |\n";
    csv.add("trace", name + ".total_us", r.total_us);
    csv.add("trace", name + ".count", static_cast<double>(r.count));
  }
  md << "\n" << instants << " instant events, " << counters
     << " counter samples\n\n";
}

/// Circuit lifecycle / SLO section from a FlightRecorder dump (format v1).
/// The ledger is stitched by request id — ids are rep-namespaced, so one
/// circuit's events always come from one ring, and dump order within a ring
/// is chronological.
void report_flight(const std::vector<JsonValue>& lines, std::ostream& md,
                   CsvSink& csv) {
  md << "## Circuit lifecycle / SLO (flight recorder)\n\n";
  const JsonValue* header = nullptr;
  struct FlightLine {
    double req = 0.0;
    double t = 0.0;
    std::string kind;
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
  };
  std::vector<FlightLine> events;
  for (const JsonValue& line : lines) {
    const JsonValue* type = line.find("type");
    if (type && type->type == JsonValue::Type::kString &&
        type->str == "flight_recorder") {
      header = &line;
      continue;
    }
    const JsonValue* req = line.find("req");
    const JsonValue* t = line.find("t");
    const JsonValue* kind = line.find("kind");
    if (!req || !t || !kind || kind->type != JsonValue::Type::kString) {
      continue;
    }
    FlightLine e;
    e.req = req->num_or(0);
    e.t = t->num_or(0);
    e.kind = kind->str;
    e.a = line.find("a") ? line.find("a")->num_or(0) : 0;
    e.b = line.find("b") ? line.find("b")->num_or(0) : 0;
    e.c = line.find("c") ? line.find("c")->num_or(0) : 0;
    events.push_back(std::move(e));
  }
  if (!header) {
    md << "_no flight_recorder header line_\n\n";
    return;
  }
  const auto hnum = [&](const char* key) {
    const JsonValue* v = header->find(key);
    return v ? v->num_or(0) : 0;
  };
  md << fmt(hnum("recorded"), 0) << " events recorded over "
     << fmt(hnum("rings"), 0) << " ring(s) of capacity "
     << fmt(hnum("capacity"), 0) << ", " << fmt(hnum("dropped"), 0)
     << " dropped\n\n";
  csv.add("flight", "recorded", hnum("recorded"));
  csv.add("flight", "dropped", hnum("dropped"));

  // Stitch per-circuit timelines: stable sort by request id keeps each
  // circuit's dump order (chronological within its one ring).
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightLine& lhs, const FlightLine& rhs) {
                     return lhs.req < rhs.req;
                   });
  struct Circuit {
    double req = 0.0;
    double admission = -1.0;  ///< first REQUESTED -> first GRANTED, ticks
    std::size_t retries = 0;
    std::size_t event_count = 0;
    std::string timeline;  ///< "REQUESTED@0 GRANTED@0 ..." for worst-K rows
  };
  std::vector<Circuit> circuits;
  std::vector<double> admission, recovery, retries_per_circuit;
  std::size_t granted = 0, never_granted = 0, closed = 0, shed = 0;
  std::vector<std::pair<double, int>> burn;  ///< (t, +1 revoke / -1 recover)
  {
    std::size_t i = 0;
    while (i < events.size()) {
      std::size_t j = i;
      while (j < events.size() && events[j].req == events[i].req) ++j;
      Circuit circuit;
      circuit.req = events[i].req;
      circuit.event_count = j - i;
      bool saw_requested = false, saw_granted = false, revoked = false;
      double requested_at = 0, granted_at = 0, revoked_at = 0;
      for (std::size_t k = i; k < j; ++k) {
        const FlightLine& e = events[k];
        if (!circuit.timeline.empty()) circuit.timeline += " ";
        circuit.timeline += e.kind + "@" + fmt(e.t, 0);
        if (e.kind == "REQUESTED") {
          if (!saw_requested) {
            saw_requested = true;
            requested_at = e.t;
          }
        } else if (e.kind == "GRANTED") {
          if (!saw_granted) {
            saw_granted = true;
            granted_at = e.t;
          }
        } else if (e.kind == "REVOKED") {
          revoked = true;
          revoked_at = e.t;
          burn.emplace_back(e.t, 1);
        } else if (e.kind == "RECOVERED") {
          if (revoked) {
            recovery.push_back(e.t - revoked_at);
            revoked = false;
          }
          burn.emplace_back(e.t, -1);
        } else if (e.kind == "RETRY_ENQUEUED") {
          ++circuit.retries;
        } else if (e.kind == "RETRY_SHED") {
          ++shed;
        } else if (e.kind == "CLOSED") {
          ++closed;
        }
      }
      if (saw_granted) {
        ++granted;
        if (saw_requested) {
          circuit.admission = granted_at - requested_at;
          admission.push_back(circuit.admission);
        }
      } else {
        ++never_granted;
      }
      retries_per_circuit.push_back(static_cast<double>(circuit.retries));
      circuits.push_back(std::move(circuit));
      i = j;
    }
  }
  md << "| circuits | granted | never granted | closed | retries shed |\n"
     << "|---:|---:|---:|---:|---:|\n"
     << "| " << circuits.size() << " | " << granted << " | " << never_granted
     << " | " << closed << " | " << shed << " |\n\n";
  csv.add("flight", "circuits", static_cast<double>(circuits.size()));
  csv.add("flight", "granted", static_cast<double>(granted));
  csv.add("flight", "never_granted", static_cast<double>(never_granted));

  // Order statistics with linear interpolation, matching the repo's
  // Summary/Histogram convention.
  const auto pct = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    const double rank = q * static_cast<double>(v.size() - 1);
    const auto lower = static_cast<std::size_t>(rank);
    const double fraction = rank - static_cast<double>(lower);
    if (lower + 1 >= v.size()) return v[lower];
    return v[lower] + fraction * (v[lower + 1] - v[lower]);
  };
  md << "### Admission / recovery SLOs\n\n"
     << "| metric | samples | p50 | p99 |\n|---|---:|---:|---:|\n";
  const auto slo_row = [&](const char* label, const char* key,
                           const std::vector<double>& samples) {
    md << "| " << label << " | " << samples.size() << " | ";
    if (samples.empty()) {
      md << "- | - |\n";
      return;
    }
    const double p50 = pct(samples, 0.50);
    const double p99 = pct(samples, 0.99);
    md << fmt(p50, 1) << " | " << fmt(p99, 1) << " |\n";
    csv.add("flight", std::string(key) + ".p50", p50);
    csv.add("flight", std::string(key) + ".p99", p99);
  };
  slo_row("admission latency (ticks)", "admission_latency", admission);
  slo_row("revocation -> recovery (ticks)", "recovery_time", recovery);
  slo_row("retries per circuit", "retries_per_circuit", retries_per_circuit);
  md << "\n";

  // Worst offenders: slowest admissions first, then busiest ledgers.
  std::vector<const Circuit*> worst;
  for (const Circuit& c : circuits) worst.push_back(&c);
  std::sort(worst.begin(), worst.end(), [](const Circuit* a, const Circuit* b) {
    if (a->admission != b->admission) return a->admission > b->admission;
    if (a->event_count != b->event_count) return a->event_count > b->event_count;
    return a->req < b->req;
  });
  const std::size_t k_worst = std::min<std::size_t>(5, worst.size());
  if (k_worst > 0) {
    md << "### Worst circuits (by admission latency)\n\n"
       << "| request | admission | retries | timeline |\n"
       << "|---:|---:|---:|---|\n";
    for (std::size_t i = 0; i < k_worst; ++i) {
      const Circuit& c = *worst[i];
      std::string timeline = c.timeline;
      constexpr std::size_t kMaxTimeline = 120;
      if (timeline.size() > kMaxTimeline) {
        timeline.resize(kMaxTimeline);
        timeline += "...";
      }
      md << "| " << fmt(c.req, 0) << " | "
         << (c.admission < 0 ? std::string("-") : fmt(c.admission, 0))
         << " | " << c.retries << " | `" << timeline << "` |\n";
    }
    md << "\n";
  }

  // Recovery burn-down: victims still out of service over simulated time,
  // in tenths of the observed window.
  if (!burn.empty()) {
    std::sort(burn.begin(), burn.end());
    const double t_max = burn.back().first;
    constexpr std::size_t kStages = 10;
    std::vector<int> outstanding(kStages, 0);
    int level = 0, peak = 0;
    std::size_t b = 0;
    for (std::size_t s = 0; s < kStages; ++s) {
      const double t_end =
          t_max * static_cast<double>(s + 1) / static_cast<double>(kStages);
      while (b < burn.size() && burn[b].first <= t_end) {
        level += burn[b].second;
        ++b;
      }
      outstanding[s] = level;
      peak = std::max(peak, level);
    }
    md << "### Recovery burn-down\n\n"
       << "Victims still out of service at each tenth of the window"
          " (`#### ` = at/near peak backlog).\n\n| stage |";
    for (std::size_t s = 0; s < kStages; ++s) md << " s" << s << " |";
    md << "\n|---|";
    for (std::size_t s = 0; s < kStages; ++s) md << "---|";
    md << "\n| outstanding |";
    for (std::size_t s = 0; s < kStages; ++s) {
      md << " " << outstanding[s] << " |";
      csv.add("flight", "burndown.s" + std::to_string(s),
              static_cast<double>(outstanding[s]));
    }
    md << "\n| backlog |";
    for (std::size_t s = 0; s < kStages; ++s) {
      const double frac =
          peak > 0 ? static_cast<double>(outstanding[s]) / peak : 0.0;
      md << " " << shade(frac) << "|";
    }
    md << "\n\n";
  }
}

int run_report(const Args& args) {
  const auto flag = [&](const char* name) -> std::string {
    const auto it = args.flags.find(name);
    return it == args.flags.end() ? std::string() : it->second;
  };
  const std::string metrics_path = flag("metrics");
  const std::string telemetry_path = flag("telemetry");
  const std::string trace_path = flag("trace");
  const std::string bench_path = flag("bench");
  const std::string flight_path = flag("flight");
  const std::string profile_path = flag("profile");
  if (metrics_path.empty() && telemetry_path.empty() && trace_path.empty() &&
      bench_path.empty() && flight_path.empty() && profile_path.empty()) {
    std::cerr << "ftreport: report needs at least one input\n";
    usage(std::cerr);
    return 2;
  }

  std::ostringstream md;
  CsvSink csv;
  csv.rows << "section,key,value\n";
  md << "# ftsched observability report\n\n";

  int exit_code = 0;
  if (!bench_path.empty()) {
    JsonValue bench;
    if (!parse_file(bench_path, bench)) return 2;
    const JsonValue* bench_name = bench.find("bench");
    if (bench_name && bench_name->type == JsonValue::Type::kString &&
        bench_name->str == "chaos_soak") {
      // A violation in the artifact fails the report run itself (exit 2):
      // the CI soak job must go red even though the report rendered fine.
      if (!report_chaos_soak(bench, md, csv)) exit_code = 2;
    } else if (points_have_fault_rate(bench)) {
      report_degradation(bench, md, csv);
    } else {
      report_bench(bench, md, csv);
    }
    // Benches run with --profile embed their attribution; render it too.
    ProfileDoc prof;
    if (extract_profile_block(bench, prof)) report_profile(prof, md, csv);
  }
  if (!profile_path.empty()) {
    ProfileDoc prof;
    if (!load_profile_any(profile_path, prof)) return 2;
    report_profile(prof, md, csv);
  }
  if (!metrics_path.empty()) {
    std::vector<JsonValue> lines;
    if (!parse_jsonl_file(metrics_path, lines)) return 2;
    report_metrics(lines, md, csv);
  }
  if (!telemetry_path.empty()) {
    std::vector<JsonValue> lines;
    if (!parse_jsonl_file(telemetry_path, lines)) return 2;
    report_telemetry(lines, md, csv);
  }
  if (!trace_path.empty()) {
    JsonValue trace;
    if (!parse_file(trace_path, trace)) return 2;
    report_trace(trace, md, csv);
  }
  if (!flight_path.empty()) {
    std::vector<JsonValue> lines;
    if (!parse_jsonl_file(flight_path, lines)) return 2;
    report_flight(lines, md, csv);
  }

  const std::string out_path = flag("out");
  if (out_path.empty()) {
    std::cout << md.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "ftreport: cannot open " << out_path << "\n";
      return 2;
    }
    out << md.str();
    std::cout << "report -> " << out_path << "\n";
  }
  const std::string csv_path = flag("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "ftreport: cannot open " << csv_path << "\n";
      return 2;
    }
    out << csv.rows.str();
    std::cout << "csv -> " << csv_path << "\n";
  }
  if (exit_code != 0) {
    std::cerr << "ftreport: chaos-soak artifact records an invariant "
                 "violation\n";
  }
  return exit_code;
}

// --- Anchor mode -----------------------------------------------------------

/// Validates a degradation sweep against its fault-free anchor: every rate-0
/// point whose (levels, arity) appears in the fig9 file must reproduce that
/// scheduler's summary bit-for-bit, and every point must be internally
/// consistent (ratios in [0,1], victims >= recovered, ordered percentiles).
int run_anchor(const Args& args) {
  const auto deg_it = args.flags.find("degradation");
  const auto fig9_it = args.flags.find("fig9");
  if (deg_it == args.flags.end() || fig9_it == args.flags.end()) {
    usage(std::cerr);
    return 2;
  }
  std::string scheduler = "levelwise";
  if (const auto it = args.flags.find("scheduler"); it != args.flags.end()) {
    scheduler = it->second;
  }
  JsonValue deg, fig9;
  if (!parse_file(deg_it->second, deg) || !parse_file(fig9_it->second, fig9)) {
    return 2;
  }
  const JsonValue* deg_points = deg.find("points");
  if (!points_have_fault_rate(deg)) {
    std::cerr << "ftreport: " << deg_it->second
              << ": not a degradation sweep (no \"fault_rate\" points)\n";
    return 2;
  }
  const JsonValue* fig9_points = fig9.find("points");
  if (!fig9_points || fig9_points->type != JsonValue::Type::kArray) {
    std::cerr << "ftreport: " << fig9_it->second
              << ": not a fig9 sweep (no \"points\")\n";
    return 2;
  }

  std::size_t failures = 0;
  std::size_t anchored = 0;
  const auto fail = [&](const std::string& where, const std::string& what) {
    std::cout << "FAIL " << where << ": " << what << "\n";
    ++failures;
  };

  for (const JsonValue& point : deg_points->array) {
    const auto num = [&](const char* key) {
      const JsonValue* v = point.find(key);
      return v ? v->num_or(0.0) : 0.0;
    };
    const double levels = num("levels");
    const double arity = num("arity");
    const double rate = num("fault_rate");
    // Multi-scheduler sweeps tag each point; --scheduler covers legacy
    // single-scheduler files.
    std::string point_scheduler = scheduler;
    if (const JsonValue* s = point.find("scheduler");
        s && s->type == JsonValue::Type::kString) {
      point_scheduler = s->str;
    }
    const std::string where = "levels=" + fmt(levels, 0) +
                              " arity=" + fmt(arity, 0) +
                              " rate=" + fmt(rate, 2) + " " + point_scheduler;

    // Internal consistency: service levels are ratios, recovery cannot
    // exceed the victim count, percentiles must be ordered.
    for (const char* section : {"schedulability", "open_ratio",
                                "ever_granted"}) {
      const JsonValue* s = point.find(section);
      if (!s) {
        fail(where, std::string("missing \"") + section + "\" summary");
        continue;
      }
      for (const char* stat : {"mean", "min", "max"}) {
        const JsonValue* v = s->find(stat);
        const double x = v ? v->num_or(-1.0) : -1.0;
        if (x < 0.0 || x > 1.0) {
          fail(where, std::string(section) + "." + stat + " = " + fmt(x) +
                          " outside [0, 1]");
        }
      }
    }
    const double ratio = num("recovery_success_ratio");
    if (ratio < 0.0 || ratio > 1.0) {
      fail(where, "recovery_success_ratio = " + fmt(ratio) +
                      " outside [0, 1]");
    }
    if (num("recovered") > num("victims")) {
      fail(where, "recovered " + fmt(num("recovered"), 0) + " > victims " +
                      fmt(num("victims"), 0));
    }
    // Imbalance ratios are >= 1 by construction (max over mean; 1.0 when
    // idle) and the CoV is non-negative. Absent in pre-imbalance files.
    for (const char* section : {"imbalance_max_over_mean",
                                "imbalance_hotspot"}) {
      const JsonValue* s = point.find(section);
      const JsonValue* m = s ? s->find("mean") : nullptr;
      if (s && (!m || m->num_or(0.0) < 1.0 - 1e-9)) {
        fail(where, std::string(section) + ".mean = " +
                        (m ? fmt(m->num_or(0.0), 6) : std::string("missing")) +
                        " below 1");
      }
    }
    if (const JsonValue* s = point.find("imbalance_cov")) {
      const JsonValue* m = s->find("mean");
      if (!m || m->num_or(-1.0) < 0.0) {
        fail(where, "imbalance_cov.mean negative or missing");
      }
    }
    for (const char* lat_key : {"recovery_latency", "retry_latency"}) {
      const JsonValue* lat = point.find(lat_key);
      const JsonValue* count = lat ? lat->find("count") : nullptr;
      if (!lat || !count || count->num_or(0) <= 0) continue;
      const auto pct = [&](const char* p) {
        const JsonValue* v = lat->find(p);
        return v ? v->num_or(0.0) : 0.0;
      };
      if (!(pct("p50") <= pct("p90") && pct("p90") <= pct("p99"))) {
        fail(where, std::string(lat_key) + " percentiles not ordered: " +
                        fmt(pct("p50"), 1) + "/" + fmt(pct("p90"), 1) + "/" +
                        fmt(pct("p99"), 1));
      }
    }

    // Fault-free anchor: bit-identical to the fig9 sweep's scheduler column.
    if (rate != 0.0) continue;
    const JsonValue* anchor = nullptr;
    for (const JsonValue& fp : fig9_points->array) {
      const JsonValue* fl = fp.find("levels");
      const JsonValue* fa = fp.find("arity");
      if (fl && fa && fl->num_or(-1) == levels && fa->num_or(-1) == arity) {
        const JsonValue* scheds = fp.find("schedulers");
        anchor = scheds ? scheds->find(point_scheduler) : nullptr;
        break;
      }
    }
    // Topology or scheduler not in this fig9 file — nothing to pin (new
    // policies without a fig9 column are consistency-checked only).
    if (!anchor) continue;
    ++anchored;
    const JsonValue* sched_summary = point.find("schedulability");
    for (const char* stat : {"mean", "min", "max", "stddev"}) {
      const JsonValue* expect = anchor->find(stat);
      const JsonValue* got = sched_summary ? sched_summary->find(stat)
                                           : nullptr;
      if (!expect || !got || expect->number != got->number) {
        fail(where, std::string("rate-0 schedulability.") + stat + " = " +
                        (got ? fmt(got->number, 6) : std::string("missing")) +
                        " but " + point_scheduler + " fig9 " + stat + " = " +
                        (expect ? fmt(expect->number, 6)
                                : std::string("missing")));
      }
    }
    // At rate 0 nothing is ever revoked, so all three service levels agree.
    for (const char* section : {"open_ratio", "ever_granted"}) {
      const JsonValue* s = point.find(section);
      const JsonValue* mean = s ? s->find("mean") : nullptr;
      const JsonValue* base = sched_summary ? sched_summary->find("mean")
                                            : nullptr;
      if (!mean || !base || mean->number != base->number) {
        fail(where, std::string("rate-0 ") + section +
                        ".mean diverges from schedulability.mean");
      }
    }
  }

  std::cout << "anchored " << anchored << " rate-0 point"
            << (anchored == 1 ? "" : "s") << " against " << fig9_it->second
            << "\n";
  if (anchored == 0) {
    std::cout << "FAIL: no rate-0 point matched a fig9 topology —"
                 " nothing was pinned\n";
    return 1;
  }
  if (failures > 0) {
    std::cout << "FAIL: " << failures << " anchor violation"
              << (failures == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

// --- Quality mode ----------------------------------------------------------

/// The degradation-quality gate: within one multi-scheduler degradation
/// sweep, the capacity-weighted candidate policy must spread load strictly
/// better than the oblivious baseline (lower plane hot-spot score at every
/// faulted rate, no worse at rate 0) while keeping schedulability within
/// --max-sched-drop (relative) of the baseline. Everything compared is
/// deterministic per seed, so failures are real, not noise.
int run_quality(const Args& args) {
  const auto bench_it = args.flags.find("bench");
  if (bench_it == args.flags.end()) {
    usage(std::cerr);
    return 2;
  }
  std::string baseline = "levelwise";
  std::string candidate = "levelwise-balanced";
  double max_sched_drop = 0.02;
  if (const auto it = args.flags.find("baseline-scheduler");
      it != args.flags.end()) {
    baseline = it->second;
  }
  if (const auto it = args.flags.find("candidate-scheduler");
      it != args.flags.end()) {
    candidate = it->second;
  }
  if (const auto it = args.flags.find("max-sched-drop");
      it != args.flags.end()) {
    max_sched_drop = std::atof(it->second.c_str());
    if (max_sched_drop < 0.0) {
      std::cerr << "ftreport: --max-sched-drop must be >= 0\n";
      return 2;
    }
  }
  JsonValue doc;
  if (!parse_file(bench_it->second, doc)) return 2;
  if (!points_have_fault_rate(doc)) {
    std::cerr << "ftreport: " << bench_it->second
              << ": not a degradation sweep (no \"fault_rate\" points)\n";
    return 2;
  }
  const JsonValue* points = doc.find("points");

  const auto scheduler_of = [](const JsonValue& point) {
    const JsonValue* s = point.find("scheduler");
    return s && s->type == JsonValue::Type::kString ? s->str : std::string();
  };
  const auto mean_of = [](const JsonValue& point, const char* section) {
    const JsonValue* s = point.find(section);
    const JsonValue* m = s ? s->find("mean") : nullptr;
    return m ? m->num_or(-1.0) : -1.0;
  };

  std::size_t failures = 0;
  std::size_t gated = 0;
  for (const JsonValue& bp : points->array) {
    if (scheduler_of(bp) != baseline) continue;
    const auto num = [&](const char* key) {
      const JsonValue* v = bp.find(key);
      return v ? v->num_or(0.0) : 0.0;
    };
    const double levels = num("levels");
    const double arity = num("arity");
    const double rate = num("fault_rate");
    const JsonValue* cp = nullptr;
    for (const JsonValue& candidate_point : points->array) {
      if (scheduler_of(candidate_point) != candidate) continue;
      const auto cnum = [&](const char* key) {
        const JsonValue* v = candidate_point.find(key);
        return v ? v->num_or(-1.0) : -1.0;
      };
      if (cnum("levels") == levels && cnum("arity") == arity &&
          cnum("fault_rate") == rate) {
        cp = &candidate_point;
        break;
      }
    }
    const std::string where = "levels=" + fmt(levels, 0) +
                              " arity=" + fmt(arity, 0) +
                              " rate=" + fmt(rate, 2);
    if (!cp) {
      std::cout << "FAIL " << where << ": no " << candidate
                << " point matches this " << baseline << " point\n";
      ++failures;
      continue;
    }
    ++gated;
    const std::size_t failures_before = failures;

    const double base_hotspot = mean_of(bp, "imbalance_hotspot");
    const double cand_hotspot = mean_of(*cp, "imbalance_hotspot");
    if (base_hotspot < 0.0 || cand_hotspot < 0.0) {
      std::cout << "FAIL " << where
                << ": imbalance_hotspot summary missing — re-run the bench"
                   " with this repo's fig_degradation\n";
      ++failures;
    } else if (rate > 0.0 ? !(cand_hotspot < base_hotspot)
                          : !(cand_hotspot <= base_hotspot)) {
      std::cout << "FAIL " << where << ": " << candidate << " hotspot "
                << fmt(cand_hotspot, 4) << "x not "
                << (rate > 0.0 ? "below" : "at or below") << " " << baseline
                << " " << fmt(base_hotspot, 4) << "x\n";
      ++failures;
    }

    const double base_sched = mean_of(bp, "schedulability");
    const double cand_sched = mean_of(*cp, "schedulability");
    const double floor = base_sched * (1.0 - max_sched_drop);
    if (cand_sched < floor) {
      std::cout << "FAIL " << where << ": " << candidate
                << " schedulability " << fmt(cand_sched, 4) << " below "
                << fmt(floor, 4) << " (" << baseline << " "
                << fmt(base_sched, 4) << " - " << fmt(max_sched_drop * 100, 1)
                << "%)\n";
      ++failures;
    }
    if (failures == failures_before) {
      std::cout << "ok   " << where << ": hotspot " << fmt(base_hotspot, 3)
                << "x -> " << fmt(cand_hotspot, 3) << "x, schedulability "
                << fmt(base_sched, 4) << " -> " << fmt(cand_sched, 4) << "\n";
    }
  }

  std::cout << "gated " << gated << " point" << (gated == 1 ? "" : "s")
            << ": " << candidate << " vs " << baseline << "\n";
  if (gated == 0) {
    std::cout << "FAIL: no (" << baseline << ", " << candidate
              << ") point pair found — nothing was gated\n";
    return 1;
  }
  if (failures > 0) {
    std::cout << "FAIL: " << failures << " quality violation"
              << (failures == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  if (raw.empty() || raw[0] == "--help" || raw[0] == "-h") {
    usage(raw.empty() ? std::cerr : std::cout);
    return raw.empty() ? 2 : 0;
  }
  static const std::vector<std::string> kValueFlags = {
      "baseline", "candidate",   "threshold", "metrics",
      "telemetry", "trace",      "bench",     "out",
      "csv",       "degradation", "fig9",     "scheduler",
      "flight",    "profile",     "min-ratio",
      "baseline-scheduler", "candidate-scheduler", "max-sched-drop"};
  if (raw[0] == "report") {
    Args args;
    if (!parse_args({raw.begin() + 1, raw.end()}, kValueFlags, args)) return 2;
    return run_report(args);
  }
  if (raw[0] == "anchor") {
    Args args;
    if (!parse_args({raw.begin() + 1, raw.end()}, kValueFlags, args)) return 2;
    return run_anchor(args);
  }
  if (raw[0] == "quality") {
    Args args;
    if (!parse_args({raw.begin() + 1, raw.end()}, kValueFlags, args)) return 2;
    return run_quality(args);
  }
  Args args;
  if (!parse_args(raw, kValueFlags, args)) return 2;
  if (!args.positional.empty()) {
    std::cerr << "ftreport: unknown command '" << args.positional.front()
              << "'\n";
    usage(std::cerr);
    return 2;
  }
  return run_regression(args);
}
