// ftsched — command-line front end to the library.
//
//   ftsched info <levels> <m> [w]          topology summary + validation
//   ftsched dot <levels> <m> [w]           Graphviz dump (small trees)
//   ftsched schedule <levels> <w[:w2]> <scheduler> <pattern> <reps> [seed]
//                                          schedulability experiment
//                                          (m:w selects an asymmetric tree,
//                                          e.g. `schedule 3 4:2 ...`)
//   ftsched degrade <levels> <m[:w]> <scheduler> <pattern> <reps> [seed]
//                                          fault-sweep experiment: MTBF/MTTR
//                                          cable outages, circuit revocation,
//                                          retry/backoff recovery
//   ftsched sweep <scheduler> [reps]       the paper's full Figure-9 grid,
//                                          CSV on stdout
//   ftsched soak <levels> <m[:w]> [scheduler] [seed]
//                                          chaos soak: seeded fail/repair/
//                                          open/close interleavings with the
//                                          invariant bundle re-checked every
//                                          epoch; on violation the script is
//                                          shrunk to a minimal reproducer
//                                          (exit 1). `--replay=FILE` re-runs
//                                          a reproducer instead.
//   ftsched hw <levels> <w>                hardware timing + resources
//   ftsched schedulers                     list registry names
//   ftsched patterns                       list traffic pattern names
//
// Observability flags (schedule command, may appear anywhere):
//   --probe                attach a SchedulerProbe; prints per-level
//                          rejection counts after the summary
//   --metrics-out=FILE     write probe metrics as JSON lines (implies --probe)
//   --trace-out=FILE       write a Chrome trace (chrome://tracing, Perfetto)
//   --telemetry-out=FILE   sample per-link fabric occupancy at every batch
//                          boundary and write the time-series JSONL
//                          (ftreport ingests it; see docs/OBSERVABILITY.md)
//   --profile-out=FILE     schedule and degrade: attach a cost profiler to
//                          the scheduler hot path and write the profile
//                          JSONL (format v1; ftreport --profile=FILE). Uses
//                          hardware counters via perf_event_open when the
//                          kernel/PMU allows, wall-clock timing otherwise —
//                          the artifact's "backend" field says which.
//   --profile-backend=B    auto (default) or timer: force the wall-clock
//                          fallback backend even where perf_event works
//
// Execution flags (schedule, degrade, and sweep commands):
//   --threads=N            fan repetitions over N worker threads (0 = all
//                          hardware threads). Results are bit-identical at
//                          any thread count; see docs/PERFORMANCE.md.
//   --port-policy=P        schedule and degrade: pick the level-wise port
//                          policy by name (first-fit | random | round-robin |
//                          balanced | balanced-rr | balanced-random) instead
//                          of spelling the registry name — `levelwise`
//                          + --port-policy=balanced is `levelwise-balanced`.
//                          Only valid with the `levelwise` scheduler.
//
//   --flight-dump=FILE     degrade only: attach the lifecycle flight
//                          recorder, arm the dump-on-contract-failure hook,
//                          and write the self-describing JSONL dump (format
//                          v1; decode with ftreport --flight=FILE)
//
// Fault flags (degrade command; see docs/ROBUSTNESS.md):
//   --fault-rate=F         expected fraction of cables failing at least once
//                          within the horizon (default 0; ignored when
//                          --fault-mtbf is given)
//   --fault-mtbf=T         explicit mean time between failures, ticks
//   --fault-mttr=T         mean time to repair (default horizon / 8)
//   --retry-policy=SPEC    none | immediate[:R] | fixed:D[:R] |
//                          backoff:B[:R[:J]] (default backoff:1:8)
//   --horizon=N            simulated ticks per repetition (default 1000)
//
// Soak flags (soak command; see docs/ROBUSTNESS.md):
//   --ops=N                chaos operations to generate (default 4096)
//   --epoch=N              invariant-check cadence in executed ops
//                          (default 64)
//   --max-pending=N        RetryQueue admission gate (default 256)
//   --retry-policy=SPEC    retry policy under churn (default backoff:1:4)
//   --soak-out=FILE        write the minimal reproducer script here on
//                          violation (default chaos_repro.txt)
//   --json=FILE            write the soak summary as JSON (ftreport renders
//                          it and exits 2 when the artifact records a
//                          violation)
//   --replay=FILE          re-run a reproducer script; exit 1 if it still
//                          violates, 0 if clean
//   --no-shrink            report the violation without shrinking
//   --flight-dump=FILE     also valid for soak: lifecycle ledger of the
//                          primary run
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "exec/thread_pool.hpp"
#include "fault/chaos_soak.hpp"
#include "fault/degradation.hpp"
#include "fault/fabric_manager.hpp"
#include "fault/fault_timeline.hpp"
#include "fault/retry_policy.hpp"
#include "hw/resources.hpp"
#include "hw/timing_model.hpp"
#include "obs/env.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/link_telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sched_probe.hpp"
#include "obs/trace.hpp"
#include "stats/runner.hpp"
#include "topology/dot.hpp"
#include "topology/validate.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

using namespace ftsched;

namespace {

const std::map<std::string, TrafficPattern>& pattern_names() {
  static const std::map<std::string, TrafficPattern> names{
      {"random", TrafficPattern::kRandomPermutation},
      {"reversal", TrafficPattern::kDigitReversal},
      {"rotation", TrafficPattern::kDigitRotation},
      {"transpose", TrafficPattern::kTranspose},
      {"complement", TrafficPattern::kComplement},
      {"shift", TrafficPattern::kShift},
      {"neighbor", TrafficPattern::kNeighbor},
      {"hotspot", TrafficPattern::kHotSpot},
  };
  return names;
}

int usage() {
  std::cerr << "usage: ftsched <info|dot|schedule|degrade|sweep|soak|hw|"
               "schedulers|patterns|simd> ...\n"
               "  info <levels> <m> [w]\n"
               "  dot <levels> <m> [w]\n"
               "  schedule <levels> <m[:w]> <scheduler> <pattern> <reps>"
               " [seed]\n"
               "           [--probe] [--metrics-out=FILE] [--trace-out=FILE]\n"
               "           [--profile-out=FILE] [--profile-backend=auto|timer]\n"
               "           [--threads=N] [--port-policy=P]\n"
               "  degrade <levels> <m[:w]> <scheduler> <pattern> <reps>"
               " [seed]\n"
               "          [--fault-rate=F | --fault-mtbf=T] [--fault-mttr=T]\n"
               "          [--retry-policy=SPEC] [--horizon=N] [--threads=N]\n"
               "          [--metrics-out=FILE] [--trace-out=FILE]\n"
               "          [--flight-dump=FILE] [--port-policy=P]\n"
               "  sweep <scheduler> [reps] [--threads=N]\n"
               "  soak <levels> <m[:w]> [scheduler] [seed]\n"
               "       [--ops=N] [--epoch=N] [--max-pending=N]\n"
               "       [--retry-policy=SPEC] [--soak-out=FILE] [--no-shrink]\n"
               "       [--json=FILE] [--flight-dump=FILE] [--port-policy=P]\n"
               "  soak --replay=FILE   re-run a chaos reproducer script\n"
               "  hw <levels> <w>\n"
               "  simd                 print detected/active dispatch level\n"
               "global: [--simd=scalar|avx2|avx512|auto] pin the SIMD\n"
               "        dispatch level (results are bit-identical; only\n"
               "        speed moves)\n";
  return 2;
}

/// Non-positional options, extracted from argv before positional parsing.
struct ObsFlags {
  std::string metrics_out;
  std::string trace_out;
  std::string telemetry_out;
  std::string profile_out;
  /// kTimer forces the wall-clock fallback (--profile-backend=timer).
  obs::PerfCounters::Request profile_request =
      obs::PerfCounters::Request::kAuto;
  bool probe = false;
  /// Worker threads for the repetition fan-out (schedule/sweep commands).
  /// 0 = use every hardware thread. Results are bit-identical at any value;
  /// see docs/PERFORMANCE.md.
  std::size_t threads = 1;
  // Fault flags (degrade command).
  double fault_rate = 0.0;
  double fault_mtbf = 0.0;
  double fault_mttr = 0.0;
  std::string retry_policy = "backoff:1:8";
  bool retry_policy_set = false;  ///< soak keeps its own default otherwise
  SimTime horizon = 1000;
  std::string flight_dump;  ///< degrade/soak: lifecycle ledger dump path
  std::string port_policy;  ///< level-wise port policy override, by name
  // Soak flags (soak command).
  std::uint64_t soak_ops = 4096;
  std::size_t soak_epoch = 64;
  std::size_t soak_max_pending = 256;
  std::string soak_out = "chaos_repro.txt";
  std::string soak_json;  ///< machine-readable soak summary for ftreport
  std::string soak_replay;
  bool soak_shrink = true;
};

/// Resolves --port-policy=P against the positional scheduler name: the
/// policy names map onto the levelwise registry family (the registry is the
/// single source of construction, so the CLI never builds options itself).
Result<std::string> apply_port_policy(const std::string& scheduler,
                                      const std::string& policy_name) {
  if (policy_name.empty()) return scheduler;
  const std::optional<PortPolicy> policy = parse_port_policy(policy_name);
  if (!policy) {
    return Status::error("unknown --port-policy '" + policy_name +
                         "'; known: first-fit, random, round-robin, "
                         "balanced, balanced-rr, balanced-random");
  }
  if (scheduler != "levelwise") {
    return Status::error(
        "--port-policy only combines with the 'levelwise' scheduler; use "
        "the policy-specific registry name otherwise (ftsched schedulers)");
  }
  switch (*policy) {
    case PortPolicy::kFirstFit:
      return std::string("levelwise");
    case PortPolicy::kRandom:
      return std::string("levelwise-random");
    case PortPolicy::kRoundRobin:
      return std::string("levelwise-rr");
    case PortPolicy::kBalanced:
      return std::string("levelwise-balanced");
    case PortPolicy::kBalancedRR:
      return std::string("levelwise-balanced-rr");
    case PortPolicy::kBalancedRandom:
      return std::string("levelwise-balanced-random");
  }
  return Status::error("unhandled port policy");
}

/// "metrics.jsonl" -> "metrics.rep3.jsonl" — one artifact per repetition, so
/// a sweep's observability output is never silently rep-0-only.
std::string rep_path(const std::string& base, std::size_t rep) {
  const std::size_t dot = base.rfind('.');
  const std::string suffix = ".rep" + std::to_string(rep);
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

Result<FatTree> tree_from_args(int argc, char** argv, int base) {
  const auto levels = static_cast<std::uint32_t>(std::atoi(argv[base]));
  const auto m = static_cast<std::uint32_t>(std::atoi(argv[base + 1]));
  const auto w = argc > base + 2
                     ? static_cast<std::uint32_t>(std::atoi(argv[base + 2]))
                     : m;
  return FatTree::create(FatTreeParams{levels, m, w});
}

int cmd_info(int argc, char** argv) {
  if (argc < 4) return usage();
  auto tree_or = tree_from_args(argc, argv, 2);
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  const FatTree& tree = tree_or.value();
  std::cout << "FT(l=" << tree.levels() << ", m=" << tree.child_arity()
            << ", w=" << tree.parent_arity() << ")\n";
  std::cout << "  processing elements : " << tree.node_count() << "\n";
  std::cout << "  switches            : " << tree.total_switches() << "\n";
  TextTable table({"level", "switches", "up cables", "label radices"});
  for (std::uint32_t h = 0; h < tree.levels(); ++h) {
    std::string radices;
    const MixedRadix& sys = tree.label_system(h);
    for (std::size_t i = 0; i < sys.digit_count(); ++i) {
      if (i) radices += "x";
      radices += std::to_string(sys.radix(sys.digit_count() - 1 - i));
    }
    if (radices.empty()) radices = "-";
    table.add_row({std::to_string(h), std::to_string(tree.switches_at(h)),
                   h + 1 < tree.levels() ? std::to_string(tree.cables_at(h))
                                         : "-",
                   radices});
  }
  table.print(std::cout);
  const Status valid = validate_structure(tree);
  std::cout << "  structure validation: "
            << (valid.ok() ? "OK" : valid.message()) << "\n";
  return valid.ok() ? 0 : 1;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 4) return usage();
  auto tree_or = tree_from_args(argc, argv, 2);
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  if (tree_or.value().total_switches() > 512) {
    std::cerr << "tree too large to draw usefully (>512 switches)\n";
    return 1;
  }
  export_dot(tree_or.value(), std::cout);
  return 0;
}

int cmd_schedule(int argc, char** argv, const ObsFlags& flags) {
  if (argc < 7) return usage();
  // Arity is `m` (symmetric, w = m) or `m:w` (asymmetric, e.g. FT(3,4,2)
  // via `schedule 3 4:2 ...`).
  const std::string arity = argv[3];
  const std::size_t colon = arity.find(':');
  const auto levels = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto m = static_cast<std::uint32_t>(std::atoi(arity.c_str()));
  const auto w =
      colon == std::string::npos
          ? m
          : static_cast<std::uint32_t>(std::atoi(arity.c_str() + colon + 1));
  auto tree_or = FatTree::create(FatTreeParams{levels, m, w});
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  const auto pattern = pattern_names().find(argv[5]);
  if (pattern == pattern_names().end()) {
    std::cerr << "unknown pattern '" << argv[5] << "'\n";
    return usage();
  }
  ExperimentConfig config;
  auto scheduler_or = apply_port_policy(argv[4], flags.port_policy);
  if (!scheduler_or.ok()) {
    std::cerr << scheduler_or.message() << "\n";
    return 1;
  }
  config.scheduler = scheduler_or.value();
  if (!make_scheduler(config.scheduler).ok()) {
    std::cerr << make_scheduler(config.scheduler).message() << "\n";
    return 1;
  }
  config.pattern = pattern->second;
  config.repetitions = static_cast<std::size_t>(std::atoi(argv[6]));
  config.seed = argc > 7 ? static_cast<std::uint64_t>(std::atoll(argv[7]))
                         : 2006;
  config.allow_residual = config.scheduler == "local-hold";
  config.threads = flags.threads;

  obs::SchedulerProbe probe;
  obs::TraceWriter tracer;
  obs::LinkTelemetry telemetry;
  obs::ProfileSession profiler(flags.profile_request);
  const bool probing = flags.probe || !flags.metrics_out.empty();
  if (probing) config.probe = &probe;
  if (!flags.trace_out.empty()) config.tracer = &tracer;
  if (!flags.telemetry_out.empty()) config.telemetry = &telemetry;
  if (!flags.profile_out.empty()) config.profiler = &profiler;

  const ExperimentPoint point = run_experiment(tree_or.value(), config);
  std::cout << config.scheduler << " on " << to_string(pattern->second)
            << ", " << config.repetitions << " reps:\n";
  std::cout << "  schedulability " << point.schedulability.ratio_string()
            << "  (stddev " << TextTable::pct(point.schedulability.stddev)
            << ")\n";
  std::cout << "  granted " << point.total_granted << " / "
            << point.total_requests << " requests\n";
  if (probing) {
    std::cout << "  rejected " << point.total_rejected
              << " requests, by first-failure level:";
    if (point.reject_by_level.empty()) std::cout << " (none)";
    for (std::size_t h = 0; h < point.reject_by_level.size(); ++h) {
      std::cout << "  L" << h << "=" << point.reject_by_level[h];
    }
    std::cout << "\n";
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::cerr << "cannot open " << flags.metrics_out << "\n";
      return 1;
    }
    obs::MetricsRegistry registry;
    probe.export_metrics(registry, reject_reason_name);
    if (!flags.telemetry_out.empty()) telemetry.export_metrics(registry);
    if (!flags.profile_out.empty()) profiler.export_metrics(registry);
    registry.write_jsonl(out);
    std::cout << "  metrics -> " << flags.metrics_out << "\n";
  }
  if (!flags.profile_out.empty()) {
    std::ofstream out(flags.profile_out);
    if (!out) {
      std::cerr << "cannot open " << flags.profile_out << "\n";
      return 1;
    }
    obs::ProfileSession::write_jsonl_header(out, "ftsched_schedule",
                                            profiler.backend());
    profiler.write_jsonl_point(out, config.scheduler);
    std::cout << "  profile -> " << flags.profile_out << " (backend "
              << obs::to_string(profiler.backend()) << ", "
              << profiler.requests() << " requests)\n";
  }
  if (!flags.telemetry_out.empty()) {
    std::ofstream out(flags.telemetry_out);
    if (!out) {
      std::cerr << "cannot open " << flags.telemetry_out << "\n";
      return 1;
    }
    telemetry.write_series_jsonl(out);
    std::cout << "  telemetry -> " << flags.telemetry_out << " ("
              << telemetry.samples() << " samples)\n";
  }
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    if (!out) {
      std::cerr << "cannot open " << flags.trace_out << "\n";
      return 1;
    }
    tracer.write(out);
    std::cout << "  trace   -> " << flags.trace_out << " (" << tracer.size()
              << " events)\n";
  }
  return 0;
}

int cmd_degrade(int argc, char** argv, const ObsFlags& flags) {
  if (argc < 7) return usage();
  const std::string arity = argv[3];
  const std::size_t colon = arity.find(':');
  const auto levels = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto m = static_cast<std::uint32_t>(std::atoi(arity.c_str()));
  const auto w =
      colon == std::string::npos
          ? m
          : static_cast<std::uint32_t>(std::atoi(arity.c_str() + colon + 1));
  auto tree_or = FatTree::create(FatTreeParams{levels, m, w});
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  const FatTree& tree = tree_or.value();
  const auto pattern = pattern_names().find(argv[5]);
  if (pattern == pattern_names().end()) {
    std::cerr << "unknown pattern '" << argv[5] << "'\n";
    return usage();
  }
  auto retry_or = parse_retry_policy(flags.retry_policy);
  if (!retry_or.ok()) {
    std::cerr << retry_or.message() << "\n";
    return 1;
  }

  DegradationConfig config;
  auto scheduler_or = apply_port_policy(argv[4], flags.port_policy);
  if (!scheduler_or.ok()) {
    std::cerr << scheduler_or.message() << "\n";
    return 1;
  }
  config.scheduler = scheduler_or.value();
  if (!make_scheduler(config.scheduler).ok()) {
    std::cerr << make_scheduler(config.scheduler).message() << "\n";
    return 1;
  }
  config.pattern = pattern->second;
  config.repetitions = static_cast<std::size_t>(std::atoi(argv[6]));
  config.seed = argc > 7 ? static_cast<std::uint64_t>(std::atoll(argv[7]))
                         : 2006;
  config.threads = flags.threads;
  config.fault_rate = flags.fault_rate;
  config.mtbf = flags.fault_mtbf;
  config.mttr = flags.fault_mttr;
  config.horizon = flags.horizon;
  config.retry = retry_or.value();

  // Lifecycle flight recorder: one ring per degradation worker thread, armed
  // as the contract-failure black box for the whole run.
  std::optional<obs::FlightRecorder> recorder;
  if (!flags.flight_dump.empty()) {
    const std::size_t rings = std::max<std::size_t>(
        1, std::min(config.threads, config.repetitions));
    recorder.emplace(rings);
    config.flight = &*recorder;
    obs::arm_flight_dump_on_contract_failure(*recorder, flags.flight_dump);
  }

  obs::ProfileSession profiler(flags.profile_request);
  if (!flags.profile_out.empty()) config.profiler = &profiler;

  const DegradationPoint point = run_degradation(tree, config);
  std::cout << config.scheduler << " on " << to_string(pattern->second)
            << ", " << config.repetitions << " reps, horizon "
            << config.horizon << ", retry " << config.retry.spec() << ":\n";
  if (config.mtbf > 0.0) {
    std::cout << "  faults: mtbf " << config.mtbf << ", mttr "
              << (config.mttr > 0.0
                      ? config.mttr
                      : static_cast<double>(config.horizon) / 8.0)
              << " ticks\n";
  } else {
    std::cout << "  faults: rate " << config.fault_rate << "\n";
  }
  std::cout << "  first-attempt  " << point.schedulability.ratio_string()
            << "\n"
            << "  open at end    " << point.open_ratio.ratio_string() << "\n"
            << "  ever granted   " << point.ever_granted.ratio_string()
            << "\n"
            << "  fail/repair    " << point.fail_events << " / "
            << point.repair_events << " events\n"
            << "  victims        " << point.victims << " revoked, "
            << point.recovered << " recovered ("
            << TextTable::pct(point.recovery_success_ratio()) << ")\n"
            << "  retries        " << point.retries << " scheduled, "
            << point.shed << " shed, " << point.permanent_rejects
            << " permanent rejects, " << point.abandoned << " abandoned\n";
  const auto print_latency = [](const char* label,
                                std::span<const double> lat) {
    std::cout << "  " << label << lat.size() << " samples";
    if (!lat.empty()) {
      std::cout << ", p50/p90/p99 " << TextTable::num(percentile(lat, 0.50), 1)
                << "/" << TextTable::num(percentile(lat, 0.90), 1) << "/"
                << TextTable::num(percentile(lat, 0.99), 1) << " ticks";
    }
    std::cout << "\n";
  };
  print_latency("recovery lat.  ", point.recovery_latency);
  print_latency("retry lat.     ", point.retry_latency);

  if (!flags.profile_out.empty()) {
    std::ofstream out(flags.profile_out);
    if (!out) {
      std::cerr << "cannot open " << flags.profile_out << "\n";
      return 1;
    }
    obs::ProfileSession::write_jsonl_header(out, "ftsched_degrade",
                                            profiler.backend());
    profiler.write_jsonl_point(out, config.scheduler);
    std::cout << "  profile -> " << flags.profile_out << " (backend "
              << obs::to_string(profiler.backend()) << ", "
              << profiler.requests() << " requests)\n";
  }

  if (recorder) {
    obs::disarm_flight_dump_on_contract_failure();
    std::ofstream out(flags.flight_dump);
    if (!out) {
      std::cerr << "cannot open " << flags.flight_dump << "\n";
      return 1;
    }
    recorder->write_jsonl(out);
    std::cout << "  flight  -> " << flags.flight_dump << " ("
              << recorder->recorded() << " events, " << recorder->dropped()
              << " dropped)\n";
  }

  // Observability artifacts re-run every repetition with the tracer and
  // metrics registry attached — identical per-rep seed derivation, so
  // artifact rep k describes repetition k of the sweep above and no
  // repetition's spans are silently missing.
  if (!flags.metrics_out.empty() || !flags.trace_out.empty()) {
    double mtbf = config.mtbf;
    if (mtbf <= 0.0 && config.fault_rate > 0.0) {
      mtbf = FaultTimeline::mtbf_for_fault_rate(config.fault_rate,
                                                config.horizon);
    }
    const double mttr =
        config.mttr > 0.0
            ? config.mttr
            : std::max(1.0, static_cast<double>(config.horizon) / 8.0);

    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
      obs::TraceWriter tracer;
      FabricOptions options;
      options.scheduler = config.scheduler;
      options.seed = config.seed;
      options.retry = config.retry;
      options.horizon = config.horizon;
      options.tracer = flags.trace_out.empty() ? nullptr : &tracer;

      std::uint64_t mix = config.seed + 0x9e3779b97f4a7c15ULL * (rep + 1);
      Xoshiro256ss workload_rng(splitmix64(mix));
      const std::vector<Request> batch = generate_pattern(
          tree, config.pattern, workload_rng, config.workload);

      Simulator sim;
      FabricManager fabric(tree, sim, options);
      fabric.reseed(splitmix64(mix));
      FaultTimeline timeline;
      if (mtbf > 0.0) {
        std::uint64_t timeline_mix = mix ^ 0xfa017e11eULL;
        timeline = FaultTimeline::from_mtbf(tree, mtbf, mttr, config.horizon,
                                            splitmix64(timeline_mix));
      }
      fabric.install(timeline);
      fabric.submit(batch, 0);
      sim.run();
      fabric.verify_invariants();

      if (!flags.metrics_out.empty()) {
        const std::string path = rep_path(flags.metrics_out, rep);
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot open " << path << "\n";
          return 1;
        }
        obs::MetricsRegistry registry;
        fabric.export_metrics(registry);
        registry.write_jsonl(out);
      }
      if (!flags.trace_out.empty()) {
        const std::string path = rep_path(flags.trace_out, rep);
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot open " << path << "\n";
          return 1;
        }
        tracer.write(out);
      }
    }
    const std::string last = "rep" + std::to_string(config.repetitions - 1);
    if (!flags.metrics_out.empty()) {
      std::cout << "  metrics -> " << rep_path(flags.metrics_out, 0) << " .. "
                << last << "\n";
    }
    if (!flags.trace_out.empty()) {
      std::cout << "  trace   -> " << rep_path(flags.trace_out, 0) << " .. "
                << last << "\n";
    }
  }
  return 0;
}

int cmd_sweep(int argc, char** argv, const ObsFlags& flags) {
  if (argc < 3) return usage();
  const std::string scheduler = argv[2];
  if (!make_scheduler(scheduler).ok()) {
    std::cerr << make_scheduler(scheduler).message() << "\n";
    return 1;
  }
  const std::size_t reps =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 100;
  TextTable table({"levels", "arity", "nodes", "mean", "min", "max",
                   "stddev"});
  struct Family {
    std::uint32_t levels;
    std::vector<std::uint32_t> arities;
  };
  const std::vector<Family> families{
      {2, {8, 16, 32, 48, 64}}, {3, {4, 6, 8, 12, 16}}, {4, {3, 4, 5, 6, 7}}};
  for (const Family& family : families) {
    for (const std::uint32_t w : family.arities) {
      const FatTree tree = FatTree::symmetric(family.levels, w);
      ExperimentConfig config;
      config.scheduler = scheduler;
      config.repetitions = reps;
      config.seed = 2006 + w;
      config.allow_residual = scheduler == "local-hold";
      config.threads = flags.threads;
      const ExperimentPoint point = run_experiment(tree, config);
      table.add_row({std::to_string(family.levels), std::to_string(w),
                     std::to_string(tree.node_count()),
                     TextTable::num(point.schedulability.mean, 4),
                     TextTable::num(point.schedulability.min, 4),
                     TextTable::num(point.schedulability.max, 4),
                     TextTable::num(point.schedulability.stddev, 4)});
    }
  }
  table.print_csv(std::cout);
  return 0;
}

/// Machine-readable soak summary ({"bench":"chaos_soak", ...}) — ftreport
/// renders it and exits 2 when the artifact records a violation.
int write_soak_json(const std::string& path, const FatTreeParams& tree,
                    const SoakConfig& config, const SoakReport& report) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  os << "{\"bench\":\"chaos_soak\",\"scheduler\":\""
     << obs::json_escape(config.scheduler) << "\",\"levels\":" << tree.levels
     << ",\"m\":" << tree.child_arity << ",\"w\":" << tree.parent_arity
     << ",\"seed\":" << config.seed << ",\"ops\":" << config.ops
     << ",\"epoch\":" << config.epoch_ops
     << ",\"ok\":" << (report.ok ? "true" : "false") << ",\"violation\":\""
     << obs::json_escape(report.violation)
     << "\",\"violation_op\":" << report.violation_op
     << ",\"reproducer_ops\":" << report.reproducer.size()
     << ",\"shrink_runs\":" << report.shrink_runs
     << ",\"executed\":" << report.executed
     << ",\"skipped\":" << report.skipped << ",\"epochs\":" << report.epochs
     << ",\"submitted\":" << report.stats.submitted
     << ",\"grants\":" << report.stats.grants
     << ",\"closed\":" << report.stats.closed
     << ",\"open_at_end\":" << report.open_at_end
     << ",\"fail_events\":" << report.stats.fail_events
     << ",\"repair_events\":" << report.stats.repair_events
     << ",\"victims\":" << report.stats.victims
     << ",\"recovered\":" << report.stats.recovered
     << ",\"retries\":" << report.stats.retries
     << ",\"shed\":" << report.stats.shed << ",\"env\":";
  obs::write_env_json(os, obs::collect_env());
  os << "}\n";
  std::cout << "  json    -> " << path << "\n";
  return 0;
}

void print_soak_report(const SoakReport& report) {
  std::cout << "  executed " << report.executed << " ops (" << report.skipped
            << " skipped), " << report.epochs << " invariant epochs\n";
  std::cout << "  traffic  " << report.stats.submitted << " submitted, "
            << report.stats.grants << " grants, " << report.stats.closed
            << " closed, " << report.open_at_end << " open at end\n";
  std::cout << "  churn    " << report.stats.fail_events << " fails, "
            << report.stats.repair_events << " repairs, "
            << report.stats.victims << " victims (" << report.stats.recovered
            << " recovered), " << report.stats.retries << " retries, "
            << report.stats.shed << " shed\n";
}

int cmd_soak(int argc, char** argv, const ObsFlags& flags) {
  if (flags.soak_epoch == 0) {
    std::cerr << "--epoch must be >= 1\n";
    return 2;
  }

  // Replay mode: everything (tree, config, ops) comes from the script.
  if (!flags.soak_replay.empty()) {
    std::ifstream in(flags.soak_replay);
    if (!in) {
      std::cerr << "cannot open " << flags.soak_replay << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto script_or = parse_soak_script(buffer.str());
    if (!script_or.ok()) {
      std::cerr << flags.soak_replay << ": " << script_or.message() << "\n";
      return 2;
    }
    SoakScript script = std::move(script_or).value();
    auto tree_or = FatTree::create(script.tree);
    if (!tree_or.ok()) {
      std::cerr << flags.soak_replay << ": " << tree_or.message() << "\n";
      return 2;
    }
    if (!make_scheduler(script.config.scheduler).ok()) {
      std::cerr << flags.soak_replay << ": "
                << make_scheduler(script.config.scheduler).message() << "\n";
      return 2;
    }
    std::cout << "chaos replay: " << script.config.scheduler << " on FT("
              << script.tree.levels << "," << script.tree.child_arity
              << "," << script.tree.parent_arity << "), "
              << script.ops.size() << " ops from " << flags.soak_replay
              << "\n";
    ChaosSoak soak(tree_or.value(), script.config);
    const SoakReport report = soak.replay(script.ops);
    print_soak_report(report);
    if (report.ok) {
      std::cout << "PASS: reproducer no longer violates\n";
      return 0;
    }
    std::cout << "FAIL after " << report.violation_op << " executed ops: "
              << report.violation << "\n";
    return 1;
  }

  if (argc < 4) return usage();
  const std::string arity = argv[3];
  const std::size_t colon = arity.find(':');
  const auto levels = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto m = static_cast<std::uint32_t>(std::atoi(arity.c_str()));
  const auto w =
      colon == std::string::npos
          ? m
          : static_cast<std::uint32_t>(std::atoi(arity.c_str() + colon + 1));
  auto tree_or = FatTree::create(FatTreeParams{levels, m, w});
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  const FatTree& tree = tree_or.value();

  SoakConfig config;
  auto scheduler_or = apply_port_policy(
      argc > 4 ? argv[4] : config.scheduler, flags.port_policy);
  if (!scheduler_or.ok()) {
    std::cerr << scheduler_or.message() << "\n";
    return 1;
  }
  config.scheduler = scheduler_or.value();
  if (!make_scheduler(config.scheduler).ok()) {
    std::cerr << make_scheduler(config.scheduler).message() << "\n";
    return 1;
  }
  config.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5]))
                         : 2006;
  config.ops = flags.soak_ops;
  config.epoch_ops = flags.soak_epoch;
  config.max_pending = flags.soak_max_pending;
  config.shrink = flags.soak_shrink;
  if (flags.retry_policy_set) {
    auto retry_or = parse_retry_policy(flags.retry_policy);
    if (!retry_or.ok()) {
      std::cerr << retry_or.message() << "\n";
      return 1;
    }
    config.retry = retry_or.value();
  }

  // Lifecycle flight recorder over the primary run, armed as the black box
  // for contract failures inside the fault stack.
  std::optional<obs::FlightRecorder> recorder;
  if (!flags.flight_dump.empty()) {
    recorder.emplace(1);
    config.flight = &recorder->ring(0);
    obs::arm_flight_dump_on_contract_failure(*recorder, flags.flight_dump);
  }

  std::cout << "chaos soak: " << config.scheduler << " on FT(" << levels
            << "," << m << "," << w << "), " << config.ops
            << " ops, seed " << config.seed << ", epoch "
            << config.epoch_ops << ", retry " << config.retry.spec() << "\n";
  ChaosSoak soak(tree, config);
  const SoakReport report = soak.run();
  print_soak_report(report);

  if (recorder) {
    obs::disarm_flight_dump_on_contract_failure();
    std::ofstream out(flags.flight_dump);
    if (!out) {
      std::cerr << "cannot open " << flags.flight_dump << "\n";
      return 1;
    }
    recorder->write_jsonl(out);
    std::cout << "  flight  -> " << flags.flight_dump << " ("
              << recorder->recorded() << " events, " << recorder->dropped()
              << " dropped)\n";
  }

  if (!flags.soak_json.empty()) {
    const int rc =
        write_soak_json(flags.soak_json, tree.params(), config, report);
    if (rc != 0) return rc;
  }

  if (report.ok) {
    std::cout << "PASS: invariants clean at every epoch\n";
    return 0;
  }
  std::cout << "FAIL after " << report.violation_op << " executed ops: "
            << report.violation << "\n";
  if (!report.reproducer.empty()) {
    std::cout << "  shrunk to " << report.reproducer.size() << " ops in "
              << report.shrink_runs << " replays\n";
    std::ofstream out(flags.soak_out);
    if (!out) {
      std::cerr << "cannot open " << flags.soak_out << "\n";
      return 1;
    }
    out << write_soak_script(tree.params(), config, report.reproducer);
    std::cout << "  reproducer -> " << flags.soak_out
              << " (replay: ftsched soak --replay=" << flags.soak_out
              << ")\n";
  }
  return 1;
}

int cmd_hw(int argc, char** argv) {
  if (argc < 4) return usage();
  auto tree_or = FatTree::create(FatTreeParams::symmetric(
      static_cast<std::uint32_t>(std::atoi(argv[2])),
      static_cast<std::uint32_t>(std::atoi(argv[3]))));
  if (!tree_or.ok()) {
    std::cerr << tree_or.message() << "\n";
    return 1;
  }
  const FatTree& tree = tree_or.value();
  if (tree.levels() < 2 || tree.parent_arity() > 64) {
    std::cerr << "hardware model needs 2+ levels and w <= 64\n";
    return 1;
  }
  const TimingModel timing;
  const ResourceEstimate est = estimate_resources(tree);
  std::cout << "Centralized scheduler hardware for FT(" << tree.levels()
            << "," << tree.parent_arity() << "), " << tree.node_count()
            << " nodes:\n";
  std::cout << "  pipeline stages : " << est.pipeline_stages << "\n";
  std::cout << "  block cycle     : "
            << TextTable::num(timing.cycle_ns(tree.parent_arity()), 2)
            << " ns (Fmax "
            << TextTable::num(1000.0 / timing.cycle_ns(tree.parent_arity()),
                              0)
            << " MHz)\n";
  std::cout << "  single request  : "
            << TextTable::num(
                   timing.request_latency_ns(tree.levels(),
                                             tree.parent_arity()),
                   2)
            << " ns\n";
  std::cout << "  full batch      : "
            << TextTable::num(timing.batch_total_ns(tree.node_count(),
                                                    tree.levels(),
                                                    tree.parent_arity()) /
                                  1000.0,
                              3)
            << " us (" << tree.node_count() << " requests)\n";
  std::cout << "  memory          : " << est.memory_bits << " bits in "
            << est.m4k_blocks << " M4K blocks\n";
  std::cout << "  logic           : ~" << est.aluts << " ALUTs, "
            << est.registers << " registers\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the observability flags out of argv first, so the positional
  // commands see a flag-free argument list.
  ObsFlags flags;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe") {
      flags.probe = true;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      flags.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      flags.trace_out = arg.substr(12);
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      flags.telemetry_out = arg.substr(16);
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      flags.profile_out = arg.substr(14);
    } else if (arg.rfind("--profile-backend=", 0) == 0) {
      const std::string backend = arg.substr(18);
      if (backend == "timer") {
        flags.profile_request = obs::PerfCounters::Request::kTimer;
      } else if (backend != "auto") {
        std::cerr << "unknown --profile-backend '" << backend
                  << "' (auto|timer)\n";
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 10);
      flags.threads = n <= 0 ? exec::hardware_threads()
                             : static_cast<std::size_t>(n);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      flags.fault_rate = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--fault-mtbf=", 0) == 0) {
      flags.fault_mtbf = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--fault-mttr=", 0) == 0) {
      flags.fault_mttr = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--retry-policy=", 0) == 0) {
      flags.retry_policy = arg.substr(15);
      flags.retry_policy_set = true;
    } else if (arg.rfind("--ops=", 0) == 0) {
      flags.soak_ops = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg.rfind("--epoch=", 0) == 0) {
      flags.soak_epoch =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--max-pending=", 0) == 0) {
      flags.soak_max_pending =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 14));
    } else if (arg.rfind("--soak-out=", 0) == 0) {
      flags.soak_out = arg.substr(11);
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.soak_json = arg.substr(7);
    } else if (arg.rfind("--replay=", 0) == 0) {
      flags.soak_replay = arg.substr(9);
    } else if (arg == "--no-shrink") {
      flags.soak_shrink = false;
    } else if (arg.rfind("--port-policy=", 0) == 0) {
      flags.port_policy = arg.substr(14);
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      flags.flight_dump = arg.substr(14);
    } else if (arg.rfind("--horizon=", 0) == 0) {
      flags.horizon = static_cast<SimTime>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--simd=", 0) == 0) {
      const std::string level = arg.substr(7);
      if (level == "auto") {
        simd::use_auto();
      } else if (const auto parsed = simd::parse_level(level)) {
        simd::force(*parsed);
      } else {
        std::cerr << "unknown --simd '" << level
                  << "' (scalar|avx2|avx512|auto)\n";
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "info") return cmd_info(argc, argv);
  if (command == "dot") return cmd_dot(argc, argv);
  if (command == "schedule") return cmd_schedule(argc, argv, flags);
  if (command == "degrade") return cmd_degrade(argc, argv, flags);
  if (command == "sweep") return cmd_sweep(argc, argv, flags);
  if (command == "soak") return cmd_soak(argc, argv, flags);
  if (command == "hw") return cmd_hw(argc, argv);
  if (command == "schedulers") {
    for (const std::string& name : scheduler_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (command == "patterns") {
    for (const auto& [name, _] : pattern_names()) std::cout << name << "\n";
    return 0;
  }
  if (command == "simd") {
    // Machine-readable dispatch report: CI's equivalence job greps
    // "detected:" to decide whether an avx2-vs-scalar diff is meaningful on
    // this host or must be skipped with a notice.
    std::cout << "detected: " << simd::to_string(simd::detect()) << "\n"
              << "active: " << simd::to_string(simd::active()) << "\n";
    return 0;
  }
  return usage();
}
