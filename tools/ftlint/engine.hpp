// ftlint/engine.hpp — owns the file set and runs the full analysis.
//
// The engine is the only layer that sees more than one file at a time: it
// merges per-module unordered-container names, builds the include graph for
// the cycle / unresolved-include rules, applies suppressions (tracking which
// ones absorbed a finding), and reports dead or malformed suppressions.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "ftlint/rules.hpp"
#include "ftlint/source_file.hpp"

namespace ftlint {

struct EngineOptions {
  /// Repository root. When non-empty, quoted includes are resolved against it
  /// and the include-cycle / unresolved-include rules run; when empty those
  /// rules are off (single-fixture mode).
  std::string root;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts) : opts_(std::move(opts)) {}

  /// Parses `content` as the file at `path` and adds it to the set.
  void add_source(std::string path, std::string_view content);

  /// Adds a file or recursively scans a directory for .hpp/.cpp sources.
  /// Skips hidden entries, `build*` directories, and fixture trees
  /// (directories whose name ends in `_fixtures`) unless the path names them
  /// explicitly. Returns false (with a message in `error`) on I/O failure.
  bool scan(const std::filesystem::path& path, std::string& error);

  /// Runs all rules, applies suppressions, and returns the surviving
  /// findings sorted by (file, line, rule).
  std::vector<Finding> run();

  const std::vector<SourceFile>& files() const { return files_; }

 private:
  EngineOptions opts_;
  std::vector<SourceFile> files_;
};

}  // namespace ftlint
