// ftlint/include_graph.hpp — include edges, the layering DAG, and cycles.
//
// DESIGN.md §3 describes one library per subsystem with a strict dependency
// direction; until now that contract lived in comments and CMake link lines
// (which over-approximate: a target may link more than it includes). This
// builder derives the REAL module graph from `#include` edges and checks it
// against the allowed DAG below.
//
// The allowed DAG, bottom (no deps) to top; every module may also include
// itself, and every module may include util:
//
//   L0  util       —
//   L1  topology   util
//       obs        util                  (observe-never-steer: ONLY util)
//       exec       util                  (the sole <thread> authority)
//   L2  des        obs
//       linkstate  topology, obs
//   L3  core       topology, obs, linkstate
//   L4  workload   topology, core
//       hw         topology, obs, linkstate, core
//   L5  stats      obs, exec, linkstate, core, workload
//   L6  fault      topology, obs, des, exec, linkstate, core, workload, stats
//   L7  simnet     topology, obs, des, linkstate, core, fault
//
// NOTHING in src/ may include tools/, bench/, or tests/, and file-level
// include cycles are rejected outright.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ftlint/source_file.hpp"

namespace ftlint {

/// Allowed include targets for a src/ module ("src/core" → {"src/util", ...}).
/// A module may always include itself. Unknown modules return nullptr.
const std::set<std::string>* allowed_deps(const std::string& module);

/// The module a quoted include target lands in: "core/request.hpp" →
/// "src/core", "tools/ftlint/lexer.hpp" → "tools", "util/contracts.hpp" →
/// "src/util". Bare filenames (same-directory includes) and unknown prefixes
/// return "".
std::string include_target_module(const std::string& target);

struct IncludeCycle {
  std::vector<std::string> paths;  ///< the cycle, first file repeated last
  std::size_t line = 0;            ///< line of the closing include edge
};

/// File-level include graph over a set of parsed sources. Quoted includes are
/// resolved against (in order) the including file's directory, `root`/src,
/// `root`, and `root`/{tools,tests,bench}; unresolved edges are dropped.
class IncludeGraph {
 public:
  /// `root` may be empty: resolution then only tries the including file's
  /// directory (enough for fixture trees passed with --root).
  explicit IncludeGraph(std::string root);

  void add(const SourceFile& file);

  /// Resolves a quoted include from `from_path`; "" when no candidate exists
  /// on disk or among added files.
  std::string resolve(const std::string& from_path,
                      const std::string& target) const;

  /// All include cycles among the added files, deterministically ordered.
  /// Each cycle is reported once, anchored at its lexicographically smallest
  /// file.
  std::vector<IncludeCycle> cycles() const;

 private:
  struct PendingEdge {
    std::string from;
    std::string target;  ///< unresolved include text
    std::size_t line = 0;
  };

  std::string root_;
  std::set<std::string> files_;
  // Edges resolve lazily in cycles(): resolution consults the full file set,
  // so add() order never matters.
  std::vector<PendingEdge> pending_;
};

}  // namespace ftlint
