#include "ftlint/source_file.hpp"

#include <algorithm>
#include <cctype>

namespace ftlint {

namespace {

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> segments;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    if (slash == std::string_view::npos) {
      if (begin < path.size()) segments.push_back(path.substr(begin));
      break;
    }
    if (slash > begin) segments.push_back(path.substr(begin, slash - begin));
    begin = slash + 1;
  }
  return segments;
}

bool is_marker(std::string_view segment) {
  return segment == "src" || segment == "tools" || segment == "bench" ||
         segment == "tests" || segment == "examples";
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Rule names are strictly kebab-case; anything else in an allow-list means
/// the comment is prose ABOUT annotations (docs, messages), not one.
bool valid_rule_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
  });
}

/// Parses one comment's ftlint annotation (if any) into suppressions.
/// Comments mentioning the tag without one of the two recognized forms
/// directly after it are ignored as prose.
void parse_annotation(const Token& comment, std::vector<Suppression>& out,
                      std::size_t also_line) {
  const std::string& text = comment.text;
  const std::size_t tag = text.find("ftlint:");
  if (tag == std::string::npos) return;
  const std::string_view rest = std::string_view(text).substr(tag + 7);

  const auto malformed = [&] {
    Suppression s;
    s.line = comment.line;
    s.malformed = true;
    s.justification = std::string(trim(rest.substr(0, 40)));
    out.push_back(std::move(s));
  };

  constexpr std::string_view kAllow = "allow(";
  constexpr std::string_view kOrder = "order-insensitive(";
  if (rest.rfind(kAllow, 0) == 0) {
    const std::size_t close = rest.find(')', kAllow.size());
    if (close == std::string_view::npos) return malformed();
    const std::string_view list = rest.substr(kAllow.size(), close - kAllow.size());
    const std::string_view justification = trim(rest.substr(close + 1));
    std::vector<std::string_view> rules;
    std::size_t begin = 0;
    while (begin <= list.size()) {
      std::size_t comma = list.find(',', begin);
      if (comma == std::string_view::npos) comma = list.size();
      const std::string_view rule = trim(list.substr(begin, comma - begin));
      if (!rule.empty()) {
        // Prose about annotations, e.g. allow(...) in docs: not a suppression.
        if (!valid_rule_name(rule)) return;
        rules.push_back(rule);
      }
      begin = comma + 1;
    }
    if (rules.empty()) return malformed();
    for (const std::string_view rule : rules) {
      Suppression s;
      s.rule = std::string(rule);
      s.line = comment.line;
      s.also_line = also_line;
      s.justification = std::string(justification);
      out.push_back(std::move(s));
    }
    return;
  }
  if (rest.rfind(kOrder, 0) == 0) {
    const std::size_t close = rest.find(')', kOrder.size());
    if (close == std::string_view::npos) return malformed();
    const std::string_view justification =
        trim(rest.substr(kOrder.size(), close - kOrder.size()));
    if (justification.empty()) return malformed();
    Suppression s;
    s.rule = "unordered-iteration";
    s.line = comment.line;
    s.also_line = also_line;
    s.order_insensitive = true;
    s.justification = std::string(justification);
    out.push_back(std::move(s));
    return;
  }
  // Anything else after the tag is prose about ftlint, not an annotation.
}

}  // namespace

std::string module_of(std::string_view generic_path) {
  const std::vector<std::string_view> segments = split_path(generic_path);
  if (segments.empty()) return "";
  std::size_t marker = segments.size();  // npos
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (is_marker(segments[i])) marker = i;  // last marker wins
  }
  if (marker == segments.size()) return "";
  if (segments[marker] != "src") return std::string(segments[marker]);
  // src/<sub>/...: the subsystem directory; a file directly under src/ (or a
  // fixture imitating one) is plain "src".
  if (marker + 2 < segments.size()) {
    return "src/" + std::string(segments[marker + 1]);
  }
  return "src";
}

SourceFile parse_source(std::string path, std::string_view content) {
  SourceFile src;
  std::replace(path.begin(), path.end(), '\\', '/');
  src.path = std::move(path);
  const std::size_t slash = src.path.rfind('/');
  src.filename = slash == std::string::npos ? src.path : src.path.substr(slash + 1);
  src.module = module_of(src.path);
  src.is_header = src.filename.size() >= 4 &&
                  src.filename.compare(src.filename.size() - 4, 4, ".hpp") == 0;
  src.tokens = lex(content);

  for (const Token& token : src.tokens) {
    if (token.kind != TokKind::kComment) src.code.push_back(token);
  }

  // Directives: a `#` with no code token before it on its line.
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const Token& hash = src.code[i];
    if (!hash.punct("#")) continue;
    if (i > 0 && src.code[i - 1].line == hash.line) continue;
    if (i + 1 >= src.code.size()) continue;
    const Token& directive = src.code[i + 1];
    if (directive.line != hash.line) continue;
    if (directive.ident("pragma") && i + 2 < src.code.size() &&
        src.code[i + 2].ident("once") && src.code[i + 2].line == hash.line) {
      src.pragma_once = true;
      continue;
    }
    if (!directive.ident("include")) continue;
    if (i + 2 >= src.code.size()) continue;
    const Token& what = src.code[i + 2];
    if (what.kind == TokKind::kString && what.text.size() >= 2) {
      IncludeDirective inc;
      inc.target = what.text.substr(1, what.text.size() - 2);
      inc.quoted = true;
      inc.line = hash.line;
      src.includes.push_back(std::move(inc));
    } else if (what.punct("<")) {
      IncludeDirective inc;
      inc.quoted = false;
      inc.line = hash.line;
      for (std::size_t j = i + 3; j < src.code.size(); ++j) {
        const Token& part = src.code[j];
        if (part.line != hash.line || part.punct(">")) break;
        inc.target += part.text;
      }
      src.includes.push_back(std::move(inc));
    }
  }

  // Suppressions: trailing comments cover their own line; standalone
  // comments (first token on the line) also cover the line after their last
  // character.
  for (std::size_t i = 0; i < src.tokens.size(); ++i) {
    const Token& token = src.tokens[i];
    if (token.kind != TokKind::kComment) continue;
    if (token.text.find("ftlint:") == std::string::npos) continue;
    bool standalone = true;
    for (std::size_t j = i; j-- > 0;) {
      if (src.tokens[j].line != token.line) break;
      standalone = false;
      break;
    }
    std::size_t also_line = 0;
    if (standalone) {
      const std::size_t newlines = static_cast<std::size_t>(
          std::count(token.text.begin(), token.text.end(), '\n'));
      also_line = token.line + newlines + 1;
    }
    parse_annotation(token, src.suppressions, also_line);
  }
  return src;
}

}  // namespace ftlint
