// ftlint/source_file.hpp — one parsed translation unit, ready for rules.
//
// Wraps the raw token stream with everything the rule framework needs:
//   * `code`      — tokens with comments removed (rules match against this),
//   * `includes`  — reassembled #include directives (quoted and <system>),
//   * `pragma_once` — whether a `#pragma once` directive exists,
//   * `suppressions` — parsed allow-list and order-insensitive annotation
//     comments (see Suppression below for the two recognized forms),
//   * `module`    — the layering identity derived from the path
//     ("src/core", "src/util", …, or "tools" / "bench" / "tests" /
//     "examples"). The LAST marker segment wins so fixture trees like
//     tools/ftlint_fixtures/layering/src/util/x.hpp are classified as the
//     module they imitate.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "ftlint/lexer.hpp"

namespace ftlint {

struct IncludeDirective {
  std::string target;  ///< path between the delimiters, e.g. "core/request.hpp"
  bool quoted = false; ///< "..." (true) vs <...> (false)
  std::size_t line = 0;
};

/// One allow-list or order-insensitive annotation comment. A suppression
/// covers findings on its own line; a standalone comment line also covers
/// the next line (annotation-above style).
struct Suppression {
  std::string rule;
  std::size_t line = 0;           ///< line of the comment's first character
  std::size_t also_line = 0;      ///< standalone comment: the line after it
                                  ///< (0 when the comment trails code)
  bool order_insensitive = false; ///< came from the order-insensitive form
  std::string justification;      ///< text after the rule list / in the parens
  bool used = false;              ///< set by the engine when it absorbs a finding
  bool malformed = false;         ///< unparsable annotation (reported)

  bool covers(std::size_t finding_line) const {
    return finding_line == line || (also_line != 0 && finding_line == also_line);
  }
};

struct SourceFile {
  std::string path;      ///< as given, generic separators
  std::string filename;  ///< last path component
  std::string module;    ///< "src/<sub>", "src", "tools", "bench", "tests",
                         ///< "examples", or "" when outside any known tree
  bool is_header = false;

  std::vector<Token> tokens;  ///< full stream, comments included
  std::vector<Token> code;    ///< comments stripped
  std::vector<IncludeDirective> includes;
  bool pragma_once = false;
  std::vector<Suppression> suppressions;

  bool in_src() const { return module == "src" || module.rfind("src/", 0) == 0; }
};

/// Lexes and indexes one file. `path` is only inspected, never opened.
SourceFile parse_source(std::string path, std::string_view content);

/// The layering module for a path ("" if the path is outside src/tools/
/// bench/tests/examples). Exposed for the include-graph builder.
std::string module_of(std::string_view generic_path);

}  // namespace ftlint
