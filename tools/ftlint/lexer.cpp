#include "ftlint/lexer.hpp"

#include <cctype>

namespace ftlint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Literal prefixes that glue an identifier to a following quote:
/// R"…", L"…", u"…", U"…", u8"…" and their R-combinations.
bool is_literal_prefix(std::string_view ident) {
  return ident == "R" || ident == "L" || ident == "u" || ident == "U" ||
         ident == "u8" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

class Lexer {
 public:
  explicit Lexer(std::string_view content) : src_(content) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        advance();  // line continuation
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_quoted('"', TokKind::kString, "");
        continue;
      }
      if (c == '\'') {
        lex_quoted('\'', TokKind::kChar, "");
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      lex_punct();
    }
    return std::move(tokens_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::size_t begin, std::size_t begin_line,
            std::size_t begin_col) {
    tokens_.push_back(Token{kind, std::string(src_.substr(begin, pos_ - begin)),
                            begin_line, begin_col});
  }

  void lex_line_comment() {
    const std::size_t begin = pos_;
    const std::size_t bl = line_, bc = col_;
    while (pos_ < src_.size() && src_[pos_] != '\n') advance();
    emit(TokKind::kComment, begin, bl, bc);
  }

  void lex_block_comment() {
    const std::size_t begin = pos_;
    const std::size_t bl = line_, bc = col_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      advance();
    }
    emit(TokKind::kComment, begin, bl, bc);
  }

  /// Ordinary (non-raw) string or char literal starting at the quote.
  /// `begin_offset` backs the token start up over an already-consumed prefix.
  void lex_quoted(char quote, TokKind kind, std::string_view prefix) {
    const std::size_t begin = pos_ - prefix.size();
    const std::size_t bl = line_;
    const std::size_t bc = col_ >= prefix.size() + 1 ? col_ - prefix.size() : 1;
    advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (c == quote) {
        advance();
        break;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      advance();
    }
    emit(kind, begin, bl, bc);
  }

  /// Raw string literal; pos_ is at the opening quote, prefix already
  /// consumed (ends in R).
  void lex_raw_string(std::string_view prefix) {
    const std::size_t begin = pos_ - prefix.size();
    const std::size_t bl = line_;
    const std::size_t bc = col_ >= prefix.size() + 1 ? col_ - prefix.size() : 1;
    advance();  // opening quote
    // Delimiter: everything up to '('.
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(src_[pos_]);
      advance();
    }
    if (pos_ < src_.size() && src_[pos_] == '(') advance();
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_[pos_] == ')' &&
          src_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      advance();
    }
    emit(TokKind::kString, begin, bl, bc);
  }

  void lex_number() {
    const std::size_t begin = pos_;
    const std::size_t bl = line_, bc = col_;
    // pp-number: digits, idents, dots, exponent signs, digit separators.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        advance();
        continue;
      }
      if (c == '\'' && is_ident_char(peek(1))) {  // digit separator
        advance();
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, begin, bl, bc);
  }

  void lex_ident_or_prefixed_literal() {
    const std::size_t begin = pos_;
    const std::size_t bl = line_, bc = col_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) advance();
    const std::string_view ident = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && is_literal_prefix(ident)) {
      const char next = src_[pos_];
      if (next == '"') {
        if (ident.back() == 'R') {
          lex_raw_string(ident);
        } else {
          lex_quoted('"', TokKind::kString, ident);
        }
        return;
      }
      if (next == '\'' && ident != "R") {
        lex_quoted('\'', TokKind::kChar, ident);
        return;
      }
    }
    tokens_.push_back(Token{TokKind::kIdent, std::string(ident), bl, bc});
  }

  void lex_punct() {
    const std::size_t begin = pos_;
    const std::size_t bl = line_, bc = col_;
    const char c = src_[pos_];
    advance();
    // Fuse the two glyph pairs rules care about; everything else stays
    // single-character (so template `>` tokens count depth one by one).
    if (c == ':' && pos_ < src_.size() && src_[pos_] == ':') {
      advance();
    } else if (c == '-' && pos_ < src_.size() && src_[pos_] == '>') {
      advance();
    }
    emit(TokKind::kPunct, begin, bl, bc);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(std::string_view content) {
  return Lexer(content).run();
}

}  // namespace ftlint
