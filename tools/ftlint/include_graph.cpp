#include "ftlint/include_graph.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace ftlint {

namespace {

namespace fs = std::filesystem;

const std::map<std::string, std::set<std::string>>& dag() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"src/util", {}},
      {"src/topology", {"src/util"}},
      {"src/obs", {"src/util"}},
      {"src/exec", {"src/util"}},
      {"src/des", {"src/util", "src/obs"}},
      {"src/linkstate", {"src/util", "src/topology", "src/obs"}},
      {"src/core", {"src/util", "src/topology", "src/obs", "src/linkstate"}},
      {"src/workload", {"src/util", "src/topology", "src/core"}},
      {"src/hw",
       {"src/util", "src/topology", "src/obs", "src/linkstate", "src/core"}},
      {"src/stats",
       {"src/util", "src/obs", "src/exec", "src/linkstate", "src/core",
        "src/workload"}},
      {"src/fault",
       {"src/util", "src/topology", "src/obs", "src/des", "src/exec",
        "src/linkstate", "src/core", "src/workload", "src/stats"}},
      {"src/simnet",
       {"src/util", "src/topology", "src/obs", "src/des", "src/linkstate",
        "src/core", "src/fault"}},
  };
  return kAllowed;
}

std::string normalize(const fs::path& path) {
  return path.lexically_normal().generic_string();
}

}  // namespace

const std::set<std::string>* allowed_deps(const std::string& module) {
  const auto it = dag().find(module);
  return it == dag().end() ? nullptr : &it->second;
}

std::string include_target_module(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return "";
  const std::string head = target.substr(0, slash);
  if (head == "tools" || head == "bench" || head == "tests" ||
      head == "examples") {
    return head;
  }
  if (dag().count("src/" + head) != 0) return "src/" + head;
  return "";
}

IncludeGraph::IncludeGraph(std::string root) : root_(std::move(root)) {}

std::string IncludeGraph::resolve(const std::string& from_path,
                                  const std::string& target) const {
  std::vector<fs::path> candidates;
  const fs::path from(from_path);
  candidates.push_back(from.parent_path() / target);
  if (!root_.empty()) {
    const fs::path root(root_);
    candidates.push_back(root / "src" / target);
    candidates.push_back(root / target);
    candidates.push_back(root / "tools" / target);
    candidates.push_back(root / "tests" / target);
    candidates.push_back(root / "bench" / target);
  }
  for (const fs::path& candidate : candidates) {
    const std::string normal = normalize(candidate);
    if (files_.count(normal) != 0) return normal;
    std::error_code ec;
    if (fs::is_regular_file(candidate, ec)) return normal;
  }
  return "";
}

void IncludeGraph::add(const SourceFile& file) {
  const std::string from = normalize(fs::path(file.path));
  files_.insert(from);
  for (const IncludeDirective& inc : file.includes) {
    if (!inc.quoted) continue;
    pending_.push_back(PendingEdge{from, inc.target, inc.line});
  }
}

std::vector<IncludeCycle> IncludeGraph::cycles() const {
  // from-path → (to-path → line of the first such include)
  std::map<std::string, std::map<std::string, std::size_t>> edges;
  for (const PendingEdge& edge : pending_) {
    const std::string to = resolve(edge.from, edge.target);
    if (to.empty() || to == edge.from) continue;
    edges[edge.from].emplace(to, edge.line);
  }
  // Iterative DFS with an explicit color map; a back edge to a grey node
  // closes a cycle. Maps keep the traversal order deterministic.
  enum class Color { kWhite, kGrey, kBlack };
  std::map<std::string, Color> color;
  std::vector<IncludeCycle> found;
  std::set<std::vector<std::string>> seen;  // canonicalized cycles

  std::vector<std::string> stack;  // current DFS path
  struct Frame {
    std::string node;
    std::map<std::string, std::size_t>::const_iterator next, end;
  };

  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames;
    const auto push = [&](const std::string& node) {
      color[node] = Color::kGrey;
      stack.push_back(node);
      const auto it = edges.find(node);
      if (it == edges.end()) {
        static const std::map<std::string, std::size_t> kEmpty;
        frames.push_back(Frame{node, kEmpty.end(), kEmpty.end()});
      } else {
        frames.push_back(Frame{node, it->second.begin(), it->second.end()});
      }
    };
    push(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next == frame.end) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string& to = frame.next->first;
      const std::size_t line = frame.next->second;
      ++frame.next;
      const Color c = color[to];
      if (c == Color::kWhite) {
        push(to);
      } else if (c == Color::kGrey) {
        // stack from `to` onwards is the cycle.
        const auto at = std::find(stack.begin(), stack.end(), to);
        std::vector<std::string> cycle(at, stack.end());
        // Canonical rotation: smallest path first.
        const auto min = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min, cycle.end());
        if (seen.insert(cycle).second) {
          IncludeCycle out;
          out.paths = cycle;
          out.paths.push_back(cycle.front());
          out.line = line;
          found.push_back(std::move(out));
        }
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const IncludeCycle& a, const IncludeCycle& b) {
              return a.paths < b.paths;
            });
  return found;
}

}  // namespace ftlint
