// ftlint/output.hpp — renders findings as text, JSON, or SARIF 2.1.0.
//
// Text goes to a human (and to CI greps over stderr); JSON is the stable
// machine form (`{"findings": [...]}`); SARIF feeds code-scanning UIs and is
// uploaded as a CI artifact. All three are deterministic: findings arrive
// pre-sorted from the engine and are rendered in order.
#pragma once

#include <string>
#include <vector>

#include "ftlint/rules.hpp"

namespace ftlint {

/// `file:line: [rule] message` — one line per finding.
std::string to_text(const std::vector<Finding>& findings);

/// {"findings":[{"file","line","rule","message"},…],"count":N}
std::string to_json(const std::vector<Finding>& findings);

/// Minimal SARIF 2.1.0 log: one run, the full rule catalog as
/// tool.driver.rules, one result per finding.
std::string to_sarif(const std::vector<Finding>& findings);

/// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view text);

}  // namespace ftlint
