#include "ftlint/engine.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "ftlint/include_graph.hpp"

namespace ftlint {

namespace {

namespace fs = std::filesystem;

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

bool skip_directory(const std::string& name) {
  if (name.empty() || name.front() == '.') return true;
  if (name.rfind("build", 0) == 0) return true;
  constexpr std::string_view kFixtureSuffix = "_fixtures";
  return name.size() >= kFixtureSuffix.size() &&
         name.compare(name.size() - kFixtureSuffix.size(),
                      kFixtureSuffix.size(), kFixtureSuffix) == 0;
}

bool read_file(const fs::path& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "ftlint: cannot open " + path.generic_string();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

void Engine::add_source(std::string path, std::string_view content) {
  files_.push_back(parse_source(std::move(path), content));
}

bool Engine::scan(const fs::path& path, std::string& error) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    // Collect, then sort: directory_iterator order is unspecified and the
    // engine promises deterministic output.
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      entries.push_back(entry.path());
    }
    if (ec) {
      error = "ftlint: cannot read directory " + path.generic_string();
      return false;
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& entry : entries) {
      if (fs::is_directory(entry, ec)) {
        if (skip_directory(entry.filename().string())) continue;
        if (!scan(entry, error)) return false;
      } else if (is_source_file(entry)) {
        if (!scan(entry, error)) return false;
      }
    }
    return true;
  }
  std::string content;
  if (!read_file(path, content, error)) return false;
  add_source(path.generic_string(), content);
  return true;
}

std::vector<Finding> Engine::run() {
  std::sort(files_.begin(), files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  // Unordered-container names, merged per module: a .cpp iterating a member
  // declared in its header still trips the rule.
  std::map<std::string, std::set<std::string>> module_names;
  for (const SourceFile& file : files_) {
    std::set<std::string> names = collect_unordered_names(file);
    module_names[file.module].insert(names.begin(), names.end());
  }

  std::vector<Finding> findings;
  for (const SourceFile& file : files_) {
    run_file_rules(file, module_names[file.module], findings);
  }

  // Cross-file rules need the graph (and a root to resolve against).
  if (!opts_.root.empty()) {
    IncludeGraph graph(opts_.root);
    for (const SourceFile& file : files_) graph.add(file);
    for (const SourceFile& file : files_) {
      for (const IncludeDirective& inc : file.includes) {
        if (!inc.quoted) continue;
        if (graph.resolve(file.path, inc.target).empty()) {
          findings.push_back(
              Finding{file.path, inc.line, "unresolved-include",
                      "quoted include \"" + inc.target +
                          "\" does not resolve to any file (renamed or "
                          "phantom header?)"});
        }
      }
    }
    for (const IncludeCycle& cycle : graph.cycles()) {
      std::string chain;
      for (std::size_t i = 0; i < cycle.paths.size(); ++i) {
        if (i != 0) chain += " -> ";
        chain += cycle.paths[i];
      }
      findings.push_back(Finding{cycle.paths.front(), cycle.line,
                                 "include-cycle",
                                 "include cycle: " + chain});
    }
  }

  // Suppressions absorb findings; the engine remembers which ones fired.
  std::vector<Finding> surviving;
  for (Finding& finding : findings) {
    bool suppressed = false;
    for (SourceFile& file : files_) {
      if (file.path != finding.file) continue;
      for (Suppression& s : file.suppressions) {
        if (!s.malformed && s.rule == finding.rule && s.covers(finding.line)) {
          s.used = true;
          suppressed = true;
        }
      }
      break;
    }
    if (!suppressed) surviving.push_back(std::move(finding));
  }

  // Dead or malformed suppressions are findings themselves — and are the one
  // rule that cannot be suppressed (a suppression absorbing its own death
  // note would hide rot forever).
  for (const SourceFile& file : files_) {
    for (const Suppression& s : file.suppressions) {
      if (s.malformed) {
        surviving.push_back(
            Finding{file.path, s.line, "dead-suppression",
                    "unparsable ftlint annotation; expected "
                    "ftlint:allow(rule[,rule…]) or "
                    "ftlint:order-insensitive(justification)"});
        continue;
      }
      if (!known_rule(s.rule)) {
        surviving.push_back(Finding{
            file.path, s.line, "dead-suppression",
            "suppression names unknown rule '" + s.rule +
                "' (see ftlint --list-rules)"});
        continue;
      }
      if (!s.used) {
        surviving.push_back(Finding{
            file.path, s.line, "dead-suppression",
            "suppression for '" + s.rule +
                "' absorbs no finding; delete it so real suppressions stay "
                "auditable"});
      }
    }
  }

  std::sort(surviving.begin(), surviving.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return surviving;
}

}  // namespace ftlint
