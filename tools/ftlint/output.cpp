#include "ftlint/output.hpp"

#include <sstream>

namespace ftlint {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
        << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  if (!findings.empty()) out << "\n  ";
  out << "],\n  \"count\": " << findings.size() << "\n}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"ftlint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/ftsched/ftlint\",\n"
      << "          \"rules\": [";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n            {\"id\": \""
        << json_escape(catalog[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
        << "}}}]\n"
        << "        }";
  }
  if (!findings.empty()) out << "\n      ";
  out << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace ftlint
