#include "ftlint/rules.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "ftlint/include_graph.hpp"

namespace ftlint {

namespace {

// --- Token helpers ----------------------------------------------------------

/// code[i] is an identifier immediately followed by '(' — a call (or macro
/// invocation) site.
bool is_call(const std::vector<Token>& code, std::size_t i) {
  return code[i].kind == TokKind::kIdent && i + 1 < code.size() &&
         code[i + 1].punct("(");
}

/// The receiver identifier of a member call at code[i] (`recv.f(` or
/// `recv->f(`), or "" when the receiver is not a simple identifier.
std::string receiver_of(const std::vector<Token>& code, std::size_t i) {
  if (i < 2) return "";
  const Token& sep = code[i - 1];
  if (!sep.punct(".") && !sep.punct("->")) return "";
  const Token& recv = code[i - 2];
  return recv.kind == TokKind::kIdent ? recv.text : "";
}

/// True when code[i] is qualified by `std::` (i.e. `std` `::` precede it).
bool std_qualified(const std::vector<Token>& code, std::size_t i) {
  return i >= 2 && code[i - 1].punct("::") && code[i - 2].ident("std");
}

bool module_in(const std::string& module,
               std::initializer_list<std::string_view> list) {
  return std::any_of(list.begin(), list.end(),
                     [&](std::string_view m) { return module == m; });
}

void add(std::vector<Finding>& out, const SourceFile& src, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back(Finding{src.path, line, std::string(rule), std::move(message)});
}

// --- Ported v1 rules (now token-accurate) -----------------------------------

void rule_raw_assert(const SourceFile& src, std::vector<Finding>& out) {
  for (const IncludeDirective& inc : src.includes) {
    if (inc.quoted || (inc.target != "cassert" && inc.target != "assert.h")) {
      continue;
    }
    add(out, src, inc.line, src.is_header ? "api-contract" : "no-raw-assert",
        "do not include <" + inc.target +
            ">; contracts go through util/contracts.hpp");
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!src.code[i].ident("assert") || !is_call(src.code, i)) continue;
    if (receiver_of(src.code, i) != "") continue;  // foo.assert(...) is not ours
    if (src.is_header) {
      add(out, src, src.code[i].line, "api-contract",
          "public API headers must validate arguments with FT_REQUIRE, not "
          "raw assert (raw assert vanishes under NDEBUG)");
    } else {
      add(out, src, src.code[i].line, "no-raw-assert",
          "use FT_REQUIRE/FT_ASSERT from util/contracts.hpp instead of raw "
          "assert");
    }
  }
}

constexpr std::array<std::string_view, 10> kLinkMutators = {
    "occupy",     "occupy_up",    "occupy_down", "occupy_path",
    "release",    "release_path", "set_ulink",   "set_dlink",
    "fail_cable", "repair_cable"};

bool linkstate_receiver(const std::string& recv) {
  return recv == "state" || recv == "state_" ||
         recv.find("link_state") != std::string::npos;
}

void rule_transaction_discipline(const SourceFile& src,
                                 std::vector<Finding>& out) {
  if (src.module != "src/core" ||
      src.filename.find("scheduler") == std::string::npos) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!is_call(src.code, i)) continue;
    const Token& tok = src.code[i];
    if (std::find(kLinkMutators.begin(), kLinkMutators.end(), tok.text) ==
        kLinkMutators.end()) {
      continue;
    }
    const std::string recv = receiver_of(src.code, i);
    if (linkstate_receiver(recv)) {
      add(out, src, tok.line, "transaction-discipline",
          "schedulers must mutate LinkState through a Transaction "
          "(rollback-safe), not via " +
              recv + "." + tok.text + "()");
    }
  }
}

constexpr std::array<std::string_view, 13> kContractMacros = {
    "FT_REQUIRE",        "FT_REQUIRE_MSG",  "FT_ASSERT",
    "FT_UNREACHABLE",    "FT_CAPABILITY",   "FT_SCOPED_CAPABILITY",
    "FT_GUARDED_BY",     "FT_PT_GUARDED_BY", "FT_REQUIRES",
    "FT_ACQUIRE",        "FT_RELEASE",      "FT_ACQUIRED_BEFORE",
    "FT_EXCLUDES"};

void rule_self_contained(const SourceFile& src, std::vector<Finding>& out) {
  if (!src.is_header) return;
  if (!src.pragma_once) {
    add(out, src, 1, "self-contained-header", "header is missing #pragma once");
  }
  if (src.filename == "contracts.hpp") return;
  const bool uses_macro = std::any_of(
      src.code.begin(), src.code.end(), [](const Token& t) {
        return t.kind == TokKind::kIdent &&
               std::find(kContractMacros.begin(), kContractMacros.end(),
                         t.text) != kContractMacros.end();
      });
  if (!uses_macro) return;
  for (const IncludeDirective& inc : src.includes) {
    if (inc.quoted && inc.target == "util/contracts.hpp") return;
  }
  add(out, src, 1, "self-contained-header",
      "header uses FT_* contract macros but does not include "
      "\"util/contracts.hpp\" directly (headers must be self-contained)");
}

constexpr std::array<std::string_view, 9> kRandomBans = {
    "rand",        "srand",      "random_device",
    "mt19937",     "mt19937_64", "minstd_rand",
    "default_random_engine",     "ranlux24", "ranlux48"};

void rule_raw_random(const SourceFile& src, std::vector<Finding>& out) {
  if (src.filename == "rng.hpp") return;
  for (const IncludeDirective& inc : src.includes) {
    if (!inc.quoted && inc.target == "random") {
      add(out, src, inc.line, "no-raw-random",
          "do not include <random>; all randomness must flow through the "
          "seeded ftsched::Xoshiro256ss (util/rng.hpp) for reproducible "
          "figures");
    }
  }
  for (const Token& tok : src.code) {
    if (tok.kind != TokKind::kIdent) continue;
    if (std::find(kRandomBans.begin(), kRandomBans.end(), tok.text) ==
        kRandomBans.end()) {
      continue;
    }
    add(out, src, tok.line, "no-raw-random",
        "non-ftsched randomness '" + tok.text +
            "' breaks seeded reproducibility; use ftsched::Xoshiro256ss "
            "(util/rng.hpp)");
  }
}

void rule_raw_io(const SourceFile& src, std::vector<Finding>& out) {
  if (!src.in_src() || src.module == "src/obs") return;
  if (src.filename == "table.hpp" || src.filename == "table.cpp" ||
      src.filename == "contracts.hpp") {
    return;
  }
  constexpr std::array<std::string_view, 4> kPrinters = {"printf", "fprintf",
                                                         "puts", "fputs"};
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const Token& tok = src.code[i];
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "cout" || tok.text == "cerr") {
      add(out, src, tok.line, "no-raw-io",
          "library code must not write to std::" + tok.text +
              "; return a Status, take an std::ostream&, or export through "
              "obs/");
      continue;
    }
    if (std::find(kPrinters.begin(), kPrinters.end(), tok.text) !=
            kPrinters.end() &&
        is_call(src.code, i) && receiver_of(src.code, i).empty()) {
      add(out, src, tok.line, "no-raw-io",
          "library code must not call " + tok.text +
              "(); contract failures go through FT_REQUIRE_MSG, data through "
              "obs/ exporters or util/table");
    }
  }
}

void rule_raw_thread(const SourceFile& src, std::vector<Finding>& out) {
  if (!src.in_src() || src.module == "src/exec") return;
  for (const IncludeDirective& inc : src.includes) {
    if (!inc.quoted && (inc.target == "thread" || inc.target == "future")) {
      add(out, src, inc.line, "no-raw-thread",
          "do not include <" + inc.target +
              "> outside src/exec; parallelism goes through exec::ThreadPool "
              "so results stay deterministic");
    }
  }
  constexpr std::array<std::string_view, 6> kBanned = {
      "thread", "jthread", "async", "future", "promise", "packaged_task"};
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const Token& tok = src.code[i];
    if (tok.kind != TokKind::kIdent || !std_qualified(src.code, i)) continue;
    if (std::find(kBanned.begin(), kBanned.end(), tok.text) == kBanned.end()) {
      continue;
    }
    add(out, src, tok.line, "no-raw-thread",
        "raw std::" + tok.text +
            " outside src/exec has no determinism contract; use "
            "exec::ThreadPool / exec::parallel_for instead");
  }
}

void rule_linkstate_authority(const SourceFile& src,
                              std::vector<Finding>& out) {
  if (!src.in_src()) return;
  if (module_in(src.module,
                {"src/core", "src/fault", "src/linkstate", "src/simnet"})) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!is_call(src.code, i)) continue;
    const Token& tok = src.code[i];
    if (std::find(kLinkMutators.begin(), kLinkMutators.end(), tok.text) ==
        kLinkMutators.end()) {
      continue;
    }
    const std::string recv = receiver_of(src.code, i);
    if (linkstate_receiver(recv)) {
      add(out, src, tok.line, "linkstate-authority",
          "LinkState channels may be mutated only by src/core, src/fault, "
          "src/linkstate, and src/simnet; " +
              recv + "." + tok.text +
              "() here bypasses the circuit/fault residue invariants");
    }
  }
}

// --- Layering ---------------------------------------------------------------

void rule_layering(const SourceFile& src, std::vector<Finding>& out) {
  const std::set<std::string>* allowed = allowed_deps(src.module);
  if (allowed == nullptr) return;  // only src/<subsystem> files are constrained
  for (const IncludeDirective& inc : src.includes) {
    if (!inc.quoted) continue;
    const std::string target = include_target_module(inc.target);
    if (target.empty() || target == src.module) continue;
    if (target == "tools" || target == "bench" || target == "tests" ||
        target == "examples") {
      add(out, src, inc.line, "layering",
          "src/ must not include " + target + "/ (\"" + inc.target +
              "\"): the library layer cannot depend on its drivers");
      continue;
    }
    if (allowed->count(target) == 0) {
      add(out, src, inc.line, "layering",
          src.module + " may not include " + target + " (\"" + inc.target +
              "\"); allowed dependencies are listed in the layering DAG "
              "(docs/ANALYSIS.md)");
    }
  }
}

// --- Determinism family -----------------------------------------------------

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void rule_unordered_iteration(const SourceFile& src,
                              const std::set<std::string>& names,
                              std::vector<Finding>& out) {
  if (!deterministic_module(src.module) || names.empty()) return;
  const std::vector<Token>& code = src.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    // Range-for over a tracked container: `for ( … : name … )`.
    if (code[i].ident("for") && i + 1 < code.size() && code[i + 1].punct("(")) {
      std::size_t depth = 0;
      bool after_colon = false;
      for (std::size_t j = i + 1; j < code.size(); ++j) {
        if (code[j].punct("(")) ++depth;
        if (code[j].punct(")")) {
          if (--depth == 0) break;
        }
        if (depth == 1 && code[j].punct(":")) after_colon = true;
        if (after_colon && code[j].kind == TokKind::kIdent &&
            names.count(code[j].text) != 0) {
          add(out, src, code[i].line, "unordered-iteration",
              "iteration over unordered container '" + code[j].text +
                  "' has no deterministic order; iterate sorted keys / a "
                  "stable index, or annotate the loop with "
                  "// ftlint:order-insensitive(<why the order cannot be "
                  "observed>)");
          break;
        }
      }
      continue;
    }
    // Iterator walks: name.begin() / name.cbegin().
    if ((code[i].ident("begin") || code[i].ident("cbegin")) &&
        is_call(code, i)) {
      const std::string recv = receiver_of(code, i);
      if (!recv.empty() && names.count(recv) != 0) {
        add(out, src, code[i].line, "unordered-iteration",
            "iterator walk over unordered container '" + recv +
                "' has no deterministic order; iterate sorted keys / a "
                "stable index, or annotate with "
                "// ftlint:order-insensitive(<justification>)");
      }
    }
  }
}

void rule_wallclock(const SourceFile& src, std::vector<Finding>& out) {
  if (!deterministic_module(src.module)) return;
  constexpr std::array<std::string_view, 3> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const Token& tok : src.code) {
    if (tok.kind != TokKind::kIdent) continue;
    if (std::find(kClocks.begin(), kClocks.end(), tok.text) == kClocks.end()) {
      continue;
    }
    add(out, src, tok.line, "no-wallclock",
        "wall-clock time (std::chrono::" + tok.text +
            ") in a deterministic subsystem breaks run-to-run equality; take "
            "timestamps in the driver (bench/, tools/) or through obs/");
  }
}

void rule_pointer_key(const SourceFile& src, std::vector<Finding>& out) {
  if (!src.in_src() || src.module == "src/obs") return;
  constexpr std::array<std::string_view, 4> kOrdered = {"map", "set",
                                                        "multimap", "multiset"};
  const std::vector<Token>& code = src.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent || !std_qualified(code, i)) continue;
    if (std::find(kOrdered.begin(), kOrdered.end(), code[i].text) ==
        kOrdered.end()) {
      continue;
    }
    if (i + 1 >= code.size() || !code[i + 1].punct("<")) continue;
    // Scan the FIRST top-level template argument for a '*'.
    std::size_t depth = 1;
    for (std::size_t j = i + 2; j < code.size() && depth > 0; ++j) {
      if (code[j].punct("<")) ++depth;
      if (code[j].punct(">")) --depth;
      if (depth == 1 && code[j].punct(",")) break;  // key type ended
      if (depth == 0) break;
      if (code[j].punct("*")) {
        add(out, src, code[i].line, "no-pointer-key",
            "std::" + code[i].text +
                " keyed by a pointer orders by allocation address, which "
                "varies run to run; key by a stable id instead");
        break;
      }
    }
  }
}

// --- Observability discipline -----------------------------------------------

/// Lifecycle-event emission in the scheduling/fault/linkstate layers must go
/// through FT_FLIGHT_EVENT: the macro null-guards the ring pointer, so a
/// detached recorder costs one branch and a raw `flight->record(...)` call
/// either crashes when detached or pays event construction unconditionally.
void rule_flight_event_guard(const SourceFile& src,
                             std::vector<Finding>& out) {
  if (!module_in(src.module, {"src/core", "src/fault", "src/linkstate"})) {
    return;
  }
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (!src.code[i].ident("record") || !is_call(src.code, i)) continue;
    const std::string recv = receiver_of(src.code, i);
    if (recv.find("flight") == std::string::npos) continue;
    add(out, src, src.code[i].line, "flight-event-guard",
        "flight-recorder events must be emitted through FT_FLIGHT_EVENT "
        "(null-guarded, free when detached), not a raw " +
            recv + "->record() call");
  }
}

// --- Timing authority -------------------------------------------------------

/// All timing — wall-clock stopwatches and hardware counters alike — flows
/// through src/obs (obs::Stopwatch, obs::PerfCounters) so every bench and
/// tool shares one calibrated, fallback-aware measurement path. src/des owns
/// virtual time and is the other legitimate clock authority.
void rule_raw_timing(const SourceFile& src, std::vector<Finding>& out) {
  if (module_in(src.module, {"src/obs", "src/des"})) return;
  constexpr std::array<std::string_view, 6> kTimingCalls = {
      "clock_gettime", "gettimeofday", "rdtsc",
      "__rdtsc",       "__rdtscp",     "perf_event_open"};
  constexpr std::array<std::string_view, 4> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock"};
  const std::vector<Token>& code = src.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!is_call(code, i)) continue;
    const Token& tok = code[i];
    if (std::find(kTimingCalls.begin(), kTimingCalls.end(), tok.text) !=
        kTimingCalls.end()) {
      add(out, src, tok.line, "no-raw-timing",
          "raw timing source " + tok.text +
              "() outside src/obs and src/des; take wall time through "
              "obs::Stopwatch and hardware counters through "
              "obs::PerfCounters");
      continue;
    }
    if (tok.ident("now") && i >= 2 && code[i - 1].punct("::") &&
        std::find(kClocks.begin(), kClocks.end(), code[i - 2].text) !=
            kClocks.end()) {
      add(out, src, tok.line, "no-raw-timing",
          "std::chrono::" + code[i - 2].text +
              "::now() outside src/obs and src/des; use obs::Stopwatch so "
              "all timing shares one calibrated measurement path");
    }
  }
}

// --- SIMD authority ---------------------------------------------------------

/// All vector code lives behind the runtime-dispatch shim (util/simd.hpp):
/// every kernel exists at every dispatch level with the scalar table as the
/// tested reference, so a raw intrinsic anywhere else is by definition a
/// second, untested vector path. src/util (the shim's own implementation) is
/// the only place allowed to know how the kernels are vectorized.
void rule_raw_intrinsics(const SourceFile& src, std::vector<Finding>& out) {
  if (src.module == "src/util") return;
  constexpr std::array<std::string_view, 9> kIntrinsicHeaders = {
      "immintrin.h", "x86intrin.h", "emmintrin.h",
      "xmmintrin.h", "smmintrin.h", "tmmintrin.h",
      "nmmintrin.h", "pmmintrin.h", "arm_neon.h"};
  for (const IncludeDirective& inc : src.includes) {
    if (!inc.quoted && std::find(kIntrinsicHeaders.begin(),
                                 kIntrinsicHeaders.end(),
                                 inc.target) != kIntrinsicHeaders.end()) {
      add(out, src, inc.line, "no-raw-intrinsics",
          "<" + inc.target +
              "> outside src/util opens a second, untested vector path; call "
              "the dispatch shim (util/simd.hpp) instead");
    }
  }
  constexpr std::array<std::string_view, 9> kVectorTypes = {
      "__m128", "__m128i", "__m128d", "__m256", "__m256i",
      "__m256d", "__m512", "__m512i", "__m512d"};
  for (const Token& tok : src.code) {
    if (tok.kind != TokKind::kIdent) continue;
    const std::string& t = tok.text;
    const bool vector_type =
        std::find(kVectorTypes.begin(), kVectorTypes.end(), t) !=
        kVectorTypes.end();
    const bool intrinsic_call =
        t.rfind("_mm_", 0) == 0 || t.rfind("_mm256_", 0) == 0 ||
        t.rfind("_mm512_", 0) == 0 || t.rfind("__builtin_ia32_", 0) == 0;
    if (!vector_type && !intrinsic_call) continue;
    add(out, src, tok.line, "no-raw-intrinsics",
        "raw SIMD '" + t +
            "' outside src/util; vector kernels live behind util/simd.hpp "
            "so every dispatch level stays tested against the scalar "
            "reference");
  }
}

// --- Lock discipline --------------------------------------------------------

void rule_mutex_guarded_by(const SourceFile& src, std::vector<Finding>& out) {
  if (!src.in_src()) return;
  constexpr std::array<std::string_view, 5> kStdMutexes = {
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex"};
  const std::vector<Token>& code = src.code;

  // All mutexes referenced by an FT_GUARDED_BY/FT_REQUIRES/ordering macro.
  std::set<std::string> associated;
  constexpr std::array<std::string_view, 5> kAssocMacros = {
      "FT_GUARDED_BY", "FT_PT_GUARDED_BY", "FT_REQUIRES",
      "FT_ACQUIRED_BEFORE", "FT_ACQUIRED_AFTER"};
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent ||
        std::find(kAssocMacros.begin(), kAssocMacros.end(), code[i].text) ==
            kAssocMacros.end() ||
        !code[i + 1].punct("(")) {
      continue;
    }
    for (std::size_t j = i + 2; j < code.size() && !code[j].punct(")"); ++j) {
      if (code[j].kind == TokKind::kIdent) associated.insert(code[j].text);
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    const bool std_mutex =
        std::find(kStdMutexes.begin(), kStdMutexes.end(), tok.text) !=
            kStdMutexes.end() &&
        std_qualified(code, i);
    const bool wrapped = tok.ident("Mutex");
    if (!std_mutex && !wrapped) continue;
    if (i + 1 >= code.size() || code[i + 1].kind != TokKind::kIdent) continue;
    const std::string& name = code[i + 1].text;
    // Declaration shapes only: `Mutex name;` / `std::mutex name{…};`.
    if (i + 2 < code.size() && !code[i + 2].punct(";") &&
        !code[i + 2].punct("{") && !code[i + 2].punct("=")) {
      continue;
    }
    if (associated.count(name) == 0) {
      add(out, src, tok.line, "mutex-guarded-by",
          "mutex '" + name +
              "' has no FT_GUARDED_BY/FT_REQUIRES association in this file; "
              "state a lock-discipline contract (util/contracts.hpp) so "
              "ftlint and -Wthread-safety can check it");
    }
  }
}

}  // namespace

// --- Catalog ----------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"no-raw-assert",
       "contract violations go through FT_REQUIRE/FT_ASSERT, never raw "
       "assert()"},
      {"api-contract",
       "public API headers validate arguments with FT_REQUIRE, not raw "
       "assert"},
      {"transaction-discipline",
       "schedulers mutate LinkState only through a rollback-safe Transaction"},
      {"self-contained-header",
       "headers carry #pragma once and include util/contracts.hpp directly "
       "when using FT_* macros"},
      {"no-raw-random",
       "all randomness flows through the seeded ftsched::Xoshiro256ss"},
      {"no-raw-io",
       "library code never prints; data goes through obs/ exporters or "
       "util/table"},
      {"no-raw-thread",
       "src/exec is the only subsystem allowed to touch <thread>/<future>"},
      {"linkstate-authority",
       "LinkState channel mutators are called only from core/fault/linkstate/"
       "simnet"},
      {"layering",
       "#include edges must follow the subsystem DAG; src/ never includes "
       "tools/, bench/, or tests/"},
      {"include-cycle", "file-level include cycles are forbidden"},
      {"unresolved-include",
       "every quoted include must resolve to a file (catches renames and "
       "phantom headers)"},
      {"unordered-iteration",
       "deterministic subsystems do not iterate unordered containers without "
       "an order-insensitive justification"},
      {"no-wallclock",
       "deterministic subsystems never read wall clocks "
       "(std::chrono::*_clock)"},
      {"no-pointer-key",
       "ordered containers keyed by pointers order by allocation address — "
       "nondeterministic across runs"},
      {"mutex-guarded-by",
       "every mutex member carries at least one FT_GUARDED_BY/FT_REQUIRES "
       "association"},
      {"flight-event-guard",
       "core/fault/linkstate emit lifecycle events only through the "
       "null-guarded FT_FLIGHT_EVENT macro, never a raw flight ring record() "
       "call"},
      {"dead-suppression",
       "ftlint:allow / order-insensitive annotations must suppress something "
       "(and parse)"},
      {"no-raw-timing",
       "timing flows through obs/ (Stopwatch, PerfCounters); raw clocks and "
       "counter syscalls live only in src/obs and src/des"},
      {"no-raw-intrinsics",
       "vector intrinsics (<immintrin.h>, __m256i, _mm*/_mm256_*/_mm512_*, "
       "__builtin_ia32_*) live only in src/util behind the simd dispatch "
       "shim"},
  };
  return kCatalog;
}

bool known_rule(std::string_view name) {
  const auto& catalog = rule_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

bool deterministic_module(const std::string& module) {
  return module_in(module, {"src/core", "src/fault", "src/linkstate",
                            "src/exec", "src/simnet", "src/des", "src/stats"});
}

std::set<std::string> collect_unordered_names(const SourceFile& src) {
  std::set<std::string> names;
  const std::vector<Token>& code = src.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent ||
        std::find(kUnorderedTypes.begin(), kUnorderedTypes.end(),
                  code[i].text) == kUnorderedTypes.end()) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= code.size() || !code[j].punct("<")) continue;  // e.g. an #include
    std::size_t depth = 1;
    for (++j; j < code.size() && depth > 0; ++j) {
      if (code[j].punct("<")) ++depth;
      if (code[j].punct(">")) --depth;
    }
    // Declarator(s): skip ref/pointer glyphs, take `name`, then `, name`…
    while (j < code.size()) {
      while (j < code.size() && (code[j].punct("&") || code[j].punct("*"))) ++j;
      if (j >= code.size() || code[j].kind != TokKind::kIdent) break;
      names.insert(code[j].text);
      if (j + 1 < code.size() && code[j + 1].punct(",")) {
        j += 2;
        continue;
      }
      break;
    }
  }
  return names;
}

void run_file_rules(const SourceFile& src,
                    const std::set<std::string>& unordered_names,
                    std::vector<Finding>& out) {
  rule_raw_assert(src, out);
  rule_transaction_discipline(src, out);
  rule_self_contained(src, out);
  rule_raw_random(src, out);
  rule_raw_io(src, out);
  rule_raw_thread(src, out);
  rule_linkstate_authority(src, out);
  rule_layering(src, out);
  rule_unordered_iteration(src, unordered_names, out);
  rule_wallclock(src, out);
  rule_pointer_key(src, out);
  rule_mutex_guarded_by(src, out);
  rule_flight_event_guard(src, out);
  rule_raw_timing(src, out);
  rule_raw_intrinsics(src, out);
}

}  // namespace ftlint
