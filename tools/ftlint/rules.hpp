// ftlint/rules.hpp — the rule catalog and the per-file rule pass.
//
// Rules are pure functions over a parsed SourceFile; cross-file rules
// (include cycles, unresolved includes, dead suppressions) live in the
// engine, which owns the file set. Each rule has a stable kebab-case name —
// the name IS the public interface: it appears in diagnostics, in
// `ftlint:allow(<rule>)` suppressions, in --expect fixtures, and as the
// SARIF ruleId.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "ftlint/source_file.hpp"

namespace ftlint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;  ///< one line, used by --list-rules and SARIF
};

/// Every rule the engine can emit, determinism family included, in catalog
/// order (stable for SARIF rule indices).
const std::vector<RuleInfo>& rule_catalog();

/// True iff `name` is a known rule (suppressions naming unknown rules are
/// reported as dead).
bool known_rule(std::string_view name);

/// Container names declared in `src` with an unordered_{map,set,...} type.
/// The engine merges these per module so a .cpp iterating a member declared
/// in its header is still caught.
std::set<std::string> collect_unordered_names(const SourceFile& src);

/// Runs every per-file rule on `src`, appending findings. `unordered_names`
/// is the merged name set for the file's module (see
/// collect_unordered_names). Suppressions are NOT applied here — the engine
/// filters afterwards so it can track used suppressions.
void run_file_rules(const SourceFile& src,
                    const std::set<std::string>& unordered_names,
                    std::vector<Finding>& out);

/// Subsystems whose results feed reproducible figures: iteration order,
/// clocks, and address-keyed containers are constrained there.
bool deterministic_module(const std::string& module);

}  // namespace ftlint
