// ftlint — token-aware static analysis for the ftsched tree.
//
//   ftlint [--root DIR] [--format=text|json|sarif] [--out FILE]
//          [--expect RULE] [--list-rules] <file-or-dir>...
//
// Diagnostics (text) always go to stderr so CI greps and WILL_FAIL tests see
// them regardless of --format; machine output (json/sarif) goes to stdout or
// --out FILE. Exit codes: 0 clean, 1 findings (or --expect unmet), 2 usage /
// I/O error.
//
// --root enables the cross-file rules (include-cycle, unresolved-include)
// and makes reported paths root-relative. --expect RULE inverts the contract
// for fixtures: exit 0 iff at least one finding of RULE survived.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ftlint/engine.hpp"
#include "ftlint/output.hpp"

namespace {

int usage() {
  std::cerr << "usage: ftlint [--root DIR] [--format=text|json|sarif] "
               "[--out FILE] [--expect RULE] [--list-rules] <path>...\n";
  return 2;
}

/// Strips `root/` from the front of a finding path so reports are stable
/// across checkouts.
void relativize(std::vector<ftlint::Finding>& findings,
                const std::string& root) {
  if (root.empty()) return;
  std::string prefix = root;
  if (prefix.back() != '/') prefix += '/';
  for (ftlint::Finding& f : findings) {
    if (f.file.rfind(prefix, 0) == 0) f.file.erase(0, prefix.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string format = "text";
  std::string out_path;
  std::string expect;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag,
                              std::string& slot) -> bool {
      if (arg.rfind(flag + "=", 0) == 0) {
        slot = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg == flag) {
        if (i + 1 >= argc) return false;
        slot = argv[++i];
        return true;
      }
      return false;
    };
    if (arg == "--list-rules") {
      for (const ftlint::RuleInfo& rule : ftlint::rule_catalog()) {
        std::cout << rule.name << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (value_of("--root", root) || value_of("--format", format) ||
        value_of("--out", out_path) || value_of("--expect", expect)) {
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage();
    paths.push_back(arg);
  }

  if (paths.empty()) return usage();
  if (format != "text" && format != "json" && format != "sarif") {
    return usage();
  }
  if (!expect.empty() && !ftlint::known_rule(expect)) {
    std::cerr << "ftlint: --expect names unknown rule '" << expect << "'\n";
    return 2;
  }

  ftlint::Engine engine(ftlint::EngineOptions{root});
  for (const std::string& path : paths) {
    std::string error;
    if (!engine.scan(path, error)) {
      std::cerr << error << "\n";
      return 2;
    }
  }

  std::vector<ftlint::Finding> findings = engine.run();
  relativize(findings, root);

  if (!findings.empty()) std::cerr << ftlint::to_text(findings);

  if (format != "text") {
    const std::string rendered = format == "json" ? ftlint::to_json(findings)
                                                  : ftlint::to_sarif(findings);
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "ftlint: cannot write " << out_path << "\n";
        return 2;
      }
      out << rendered;
    }
  }

  if (!expect.empty()) {
    for (const ftlint::Finding& f : findings) {
      if (f.rule == expect) return 0;
    }
    std::cerr << "ftlint: expected at least one '" << expect
              << "' finding, got none\n";
    return 1;
  }

  if (!findings.empty()) {
    std::cerr << "ftlint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
