// ftlint/lexer.hpp — a small C++ lexer for lint rules.
//
// The v1 linter matched regex-ish patterns against comment-stripped LINES,
// which broke on raw strings, multi-line literals, and literal prefixes, and
// could not reason about constructs spanning lines (a `for` header wrapped
// by clang-format). v2 rules run on a real token stream instead: comments
// and string/char literals are single tokens, so an identifier inside a
// diagnostic string can never trip a rule, and a suppression comment is just
// a Comment token the engine can parse.
//
// The lexer is deliberately lossless about position (1-based line/column per
// token) and tolerant: it never fails, it just tokenizes greedily. It
// understands:
//   * // and /* */ comments (emitted as kComment, text preserved),
//   * "..." and '...' literals with escapes, including multi-char prefixes
//     (u8"...", L'x', R"(...)", u8R"delim(...)delim"),
//   * raw strings with custom delimiters, spanning lines,
//   * identifiers / numbers (pp-number, digit separators),
//   * punctuation, with `::` and `->` fused (rules match member calls and
//     qualified names without reassembling char pairs).
// Preprocessor directives are NOT special-cased: `#include <thread>` lexes
// as `#` `include` `<` `thread` `>` and source_file.cpp reassembles
// directives from tokens, so the same no-strings-attached guarantee holds
// for includes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ftlint {

enum class TokKind {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< pp-number (1'000, 0x1f, 1.5e3)
  kString,   ///< string literal incl. prefix/quotes, or raw string
  kChar,     ///< character literal incl. prefix/quotes
  kComment,  ///< // or /* */ comment, full text incl. the markers
  kPunct,    ///< one punctuation glyph, or fused `::` / `->`
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
  std::size_t col = 0;   ///< 1-based column of the token's first character

  bool is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool ident(std::string_view name) const {
    return kind == TokKind::kIdent && text == name;
  }
  bool punct(std::string_view glyph) const {
    return kind == TokKind::kPunct && text == glyph;
  }
};

/// Tokenizes `content`. Never fails; unterminated literals extend to EOF.
std::vector<Token> lex(std::string_view content);

}  // namespace ftlint
