// ftlint — repo-specific lint rules the generic tools cannot express.
//
// clang-tidy knows C++; it does not know that in THIS repository the whole
// correctness argument rests on a handful of conventions derived from the
// paper's Theorems 1–2:
//
//   no-raw-assert           Contract violations must abort through
//                           FT_REQUIRE/FT_ASSERT (util/contracts.hpp), which
//                           print the failing expression and location; a raw
//                           assert() vanishes under NDEBUG and hides
//                           over-grant bugs in release experiments.
//   api-contract            Public API headers (src/*/[a-z_]*.hpp) validate
//                           arguments with FT_REQUIRE — never raw assert —
//                           so precondition checks survive every build type.
//   transaction-discipline  Schedulers may mutate LinkState only through a
//                           Transaction. A direct occupy/release/set_* call
//                           in a scheduler can leak a reservation on an
//                           early exit, silently invalidating the
//                           schedulability numbers (the shared Ulink/Dlink
//                           vectors are the paper's whole data structure).
//   self-contained-header   Every header starts with #pragma once and
//                           includes util/contracts.hpp directly when it
//                           uses an FT_* macro (the compile-standalone check
//                           lives in CMake as FTSCHED_HEADER_CHECK; this is
//                           the fast textual half).
//   no-raw-random           Experiments are reproducible only because all
//                           randomness flows through the seeded
//                           ftsched::Xoshiro256ss; std::rand/<random>
//                           engines in src/ would break run-to-run equality
//                           of every figure.
//   no-raw-thread           All threading in src/ goes through the
//                           exec::ThreadPool (src/exec), whose chunked
//                           fan-out and in-order merge are what keep
//                           parallel experiment results bit-identical to
//                           sequential ones. A raw std::thread/std::async
//                           elsewhere has no determinism story and escapes
//                           the TSan-stressed pool. Exempt: src/exec (the
//                           one place allowed to touch <thread>).
//   linkstate-authority     LinkState channel mutators (occupy/release/
//                           set_ulink/set_dlink/occupy_path/release_path/
//                           fail_cable/repair_cable) may be called only from
//                           src/core, src/fault, and src/linkstate — the
//                           layers that own circuit and fault bookkeeping —
//                           plus src/simnet (the clocked setup protocol
//                           drives channels cycle by cycle by design). A
//                           mutation anywhere else bypasses the
//                           ConnectionManager/FabricManager residue
//                           invariants and can silently corrupt every
//                           fault-recovery number. reset() is exempt: the
//                           experiment runners wipe state between
//                           repetitions.
//   no-raw-io               Library code in src/ must not print: raw
//                           std::cout/std::cerr or printf-family calls
//                           bypass the structured outputs (obs/ exporters,
//                           util/table) and corrupt machine-read CSV/JSON
//                           streams. Contract failures report through
//                           FT_REQUIRE_MSG; expected failures return Status.
//                           Exempt: obs/ (the exporters), util/table
//                           (the table/CSV printer), util/contracts.hpp
//                           (the abort path itself).
//
// Usage: ftlint [--expect <rule>] <file-or-dir>...
//   Scans .hpp/.cpp files, prints "file:line: [rule] message" diagnostics,
//   exits 1 if any finding (0 when clean). With --expect RULE it instead
//   exits 0 iff at least one finding of RULE was produced — the fixture
//   self-tests use this to pin each rule's trigger.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `text[pos]` starts the exact identifier token `word` (not a
/// substring of a longer identifier).
bool token_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident_char(text[end]);
}

bool contains_token(std::string_view text, std::string_view word) {
  for (std::size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (token_at(text, pos, word)) return true;
  }
  return false;
}

/// The identifier immediately before a `.` or `->` at `pos` (the receiver of
/// a member call), or "" if the call has no simple identifier receiver.
std::string receiver_before(std::string_view text, std::size_t pos) {
  std::size_t i = pos;
  if (i >= 2 && text[i - 1] == '>' && text[i - 2] == '-') {
    i -= 2;
  } else if (i >= 1 && text[i - 1] == '.') {
    i -= 1;
  } else {
    return "";
  }
  std::size_t end = i;
  while (i > 0 && is_ident_char(text[i - 1])) --i;
  return std::string(text.substr(i, end - i));
}

/// One source file, with comments and string/char literals blanked out so
/// rules never fire inside documentation or diagnostics text. `raw` keeps
/// the original lines for the include-directive rules.
struct Source {
  std::vector<std::string> raw;
  std::vector<std::string> code;  // comment/literal-stripped
};

Source load(const fs::path& path) {
  Source src;
  std::ifstream in(path);
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    src.raw.push_back(line);
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          ++i;
        }
        out.push_back(' ');
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        out.append("  ");
        ++i;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        out.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            out.append("  ");
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          out.push_back(' ');
          ++i;
        }
        if (i < line.size()) out.push_back(quote);
        continue;
      }
      out.push_back(line[i]);
    }
    src.code.push_back(std::move(out));
  }
  return src;
}

bool path_contains(const fs::path& path, std::string_view needle) {
  return path.generic_string().find(needle) != std::string::npos;
}

class Linter {
 public:
  void scan_file(const fs::path& path) {
    const std::string ext = path.extension().string();
    if (ext != ".hpp" && ext != ".cpp") return;
    const Source src = load(path);
    const bool header = ext == ".hpp";
    const std::string name = path.filename().string();

    check_raw_assert(path, src, header);
    if (path_contains(path, "core/") &&
        name.find("scheduler") != std::string::npos) {
      check_transaction_discipline(path, src);
    }
    if (header) check_self_contained(path, src, name);
    if (name != "rng.hpp") check_raw_random(path, src);
    if (path_contains(path, "src/") && !path_contains(path, "obs/") &&
        name != "table.hpp" && name != "table.cpp" &&
        name != "contracts.hpp") {
      check_raw_io(path, src);
    }
    if (path_contains(path, "src/") && !path_contains(path, "exec/")) {
      check_raw_thread(path, src);
    }
    if (path_contains(path, "src/") && !path_contains(path, "core/") &&
        !path_contains(path, "fault/") && !path_contains(path, "linkstate/") &&
        !path_contains(path, "simnet/")) {
      check_linkstate_authority(path, src);
    }
  }

  void scan(const fs::path& path) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) scan_file(entry.path());
      }
    } else if (fs::is_regular_file(path, ec)) {
      scan_file(path);
    } else {
      std::fprintf(stderr, "ftlint: cannot read %s\n", path.c_str());
      io_error = true;
    }
  }

  std::vector<Finding> findings;
  bool io_error = false;

 private:
  void add(const fs::path& path, std::size_t line, std::string rule,
           std::string message) {
    findings.push_back(Finding{path.generic_string(), line, std::move(rule),
                               std::move(message)});
  }

  void check_raw_assert(const fs::path& path, const Source& src, bool header) {
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      if (line.find("#include <cassert>") != std::string::npos ||
          line.find("#include <assert.h>") != std::string::npos) {
        add(path, i + 1, header ? "api-contract" : "no-raw-assert",
            "do not include <cassert>; contracts go through "
            "util/contracts.hpp");
        continue;
      }
      for (std::size_t pos = line.find("assert");
           pos != std::string::npos; pos = line.find("assert", pos + 1)) {
        if (!token_at(line, pos, "assert")) continue;
        std::size_t after = pos + 6;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after >= line.size() || line[after] != '(') continue;
        if (header) {
          add(path, i + 1, "api-contract",
              "public API headers must validate arguments with FT_REQUIRE, "
              "not raw assert (raw assert vanishes under NDEBUG)");
        } else {
          add(path, i + 1, "no-raw-assert",
              "use FT_REQUIRE/FT_ASSERT from util/contracts.hpp instead of "
              "raw assert");
        }
      }
    }
  }

  void check_transaction_discipline(const fs::path& path, const Source& src) {
    static constexpr std::string_view kMutators[] = {
        "occupy",     "occupy_up",    "occupy_down", "occupy_path",
        "release",    "release_path", "set_ulink",   "set_dlink"};
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      for (const std::string_view mutator : kMutators) {
        for (std::size_t pos = line.find(mutator); pos != std::string::npos;
             pos = line.find(mutator, pos + 1)) {
          if (!token_at(line, pos, mutator)) continue;
          std::size_t after = pos + mutator.size();
          while (after < line.size() && line[after] == ' ') ++after;
          if (after >= line.size() || line[after] != '(') continue;
          const std::string recv = receiver_before(line, pos);
          if (recv == "state" || recv == "state_" ||
              recv.find("link_state") != std::string::npos) {
            add(path, i + 1, "transaction-discipline",
                "schedulers must mutate LinkState through a Transaction "
                "(rollback-safe), not via " +
                    recv + "." + std::string(mutator) + "()");
          }
        }
      }
    }
  }

  void check_self_contained(const fs::path& path, const Source& src,
                            const std::string& name) {
    // Any occurrence in actual code counts (a comment mentioning the
    // directive must not); ordering relative to includes is clang-tidy's
    // problem, existence is ours.
    bool saw_pragma_once = false;
    for (const std::string& line : src.code) {
      if (line.find("#pragma once") != std::string::npos) {
        saw_pragma_once = true;
        break;
      }
    }
    if (!saw_pragma_once) {
      add(path, 1, "self-contained-header",
          "header is missing #pragma once");
    }

    if (name == "contracts.hpp") return;
    bool uses_contract_macro = false;
    for (const std::string& line : src.code) {
      if (contains_token(line, "FT_REQUIRE") ||
          contains_token(line, "FT_ASSERT") ||
          contains_token(line, "FT_UNREACHABLE")) {
        uses_contract_macro = true;
        break;
      }
    }
    if (!uses_contract_macro) return;
    for (std::size_t i = 0; i < src.raw.size(); ++i) {
      // The path is a string literal, so it is blanked in src.code; require
      // a real include directive on the stripped line before trusting raw.
      if (src.code[i].find("#include \"") == std::string::npos) continue;
      if (src.raw[i].find("#include \"util/contracts.hpp\"") !=
          std::string::npos) {
        return;
      }
    }
    add(path, 1, "self-contained-header",
        "header uses FT_* contract macros but does not include "
        "\"util/contracts.hpp\" directly (headers must be self-contained)");
  }

  void check_linkstate_authority(const fs::path& path, const Source& src) {
    // Same receiver heuristic as transaction-discipline: only calls on
    // something that is plainly the shared link state fire (LeafTracker /
    // LinkMemory receivers like `leaves` or `memory` stay clean). reset()
    // is deliberately absent — the stats runners wipe state per repetition.
    static constexpr std::string_view kMutators[] = {
        "occupy",       "occupy_up",  "occupy_down", "occupy_path",
        "release",      "release_path", "set_ulink", "set_dlink",
        "fail_cable",   "repair_cable"};
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      for (const std::string_view mutator : kMutators) {
        for (std::size_t pos = line.find(mutator); pos != std::string::npos;
             pos = line.find(mutator, pos + 1)) {
          if (!token_at(line, pos, mutator)) continue;
          std::size_t after = pos + mutator.size();
          while (after < line.size() && line[after] == ' ') ++after;
          if (after >= line.size() || line[after] != '(') continue;
          const std::string recv = receiver_before(line, pos);
          if (recv == "state" || recv == "state_" ||
              recv.find("link_state") != std::string::npos) {
            add(path, i + 1, "linkstate-authority",
                "LinkState channels may be mutated only by src/core, "
                "src/fault, src/linkstate, and src/simnet; " +
                    recv + "." + std::string(mutator) +
                    "() here bypasses the circuit/fault residue invariants");
          }
        }
      }
    }
  }

  void check_raw_io(const fs::path& path, const Source& src) {
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      for (const std::string_view stream : {"cout", "cerr"}) {
        if (contains_token(line, stream)) {
          add(path, i + 1, "no-raw-io",
              "library code must not write to std::" + std::string(stream) +
                  "; return a Status, take an std::ostream&, or export "
                  "through obs/");
        }
      }
      // printf-family call sites only (a declaration or mention without a
      // following '(' does not fire).
      static constexpr std::string_view kPrinters[] = {"printf", "fprintf",
                                                       "puts", "fputs"};
      for (const std::string_view fn : kPrinters) {
        for (std::size_t pos = line.find(fn); pos != std::string::npos;
             pos = line.find(fn, pos + 1)) {
          if (!token_at(line, pos, fn)) continue;
          std::size_t after = pos + fn.size();
          while (after < line.size() && line[after] == ' ') ++after;
          if (after >= line.size() || line[after] != '(') continue;
          add(path, i + 1, "no-raw-io",
              "library code must not call " + std::string(fn) +
                  "(); contract failures go through FT_REQUIRE_MSG, data "
                  "through obs/ exporters or util/table");
        }
      }
    }
  }

  void check_raw_thread(const fs::path& path, const Source& src) {
    // Qualified names only (`std::thread`, not every identifier `thread`):
    // config fields like `threads` and the pool's own callers stay clean.
    static constexpr std::string_view kBanned[] = {
        "thread", "jthread", "async", "future", "promise", "packaged_task"};
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      for (const std::string_view header : {"<thread>", "<future>"}) {
        if (line.find("#include " + std::string(header)) !=
            std::string::npos) {
          add(path, i + 1, "no-raw-thread",
              "do not include " + std::string(header) +
                  " outside src/exec; parallelism goes through "
                  "exec::ThreadPool so results stay deterministic");
        }
      }
      for (std::size_t pos = line.find("std::"); pos != std::string::npos;
           pos = line.find("std::", pos + 1)) {
        const std::size_t word_at = pos + 5;
        for (const std::string_view word : kBanned) {
          if (token_at(line, word_at, word)) {
            add(path, i + 1, "no-raw-thread",
                "raw std::" + std::string(word) +
                    " outside src/exec has no determinism contract; use "
                    "exec::ThreadPool / exec::parallel_for instead");
          }
        }
      }
    }
  }

  void check_raw_random(const fs::path& path, const Source& src) {
    static constexpr std::string_view kBanned[] = {
        "rand", "srand", "random_device", "mt19937", "mt19937_64",
        "minstd_rand", "default_random_engine", "ranlux24", "ranlux48"};
    for (std::size_t i = 0; i < src.code.size(); ++i) {
      const std::string& line = src.code[i];
      if (line.find("#include <random>") != std::string::npos) {
        add(path, i + 1, "no-raw-random",
            "do not include <random>; all randomness must flow through "
            "the seeded ftsched::Xoshiro256ss (util/rng.hpp) for "
            "reproducible figures");
        continue;
      }
      // <cstdlib> is fine (abort/size_t); skip so std::rand's declaration
      // site does not double-report — call sites still fire below.
      if (line.find("#include <cstdlib>") != std::string::npos) continue;
      for (const std::string_view word : kBanned) {
        for (std::size_t pos = line.find(word); pos != std::string::npos;
             pos = line.find(word, pos + 1)) {
          if (!token_at(line, pos, word)) continue;
          add(path, i + 1, "no-raw-random",
              "non-ftsched randomness '" + std::string(word) +
                  "' breaks seeded reproducibility; use "
                  "ftsched::Xoshiro256ss (util/rng.hpp)");
        }
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> paths;
  std::string expect_rule;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--expect") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ftlint: --expect needs a rule name\n");
        return 2;
      }
      expect_rule = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: ftlint [--expect <rule>] <file-or-dir>...\n"
                   "rules: no-raw-assert api-contract transaction-discipline "
                   "self-contained-header no-raw-random no-raw-io "
                   "no-raw-thread linkstate-authority\n");
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "ftlint: no paths given (try --help)\n");
    return 2;
  }

  Linter linter;
  for (const fs::path& path : paths) linter.scan(path);
  if (linter.io_error) return 2;

  for (const Finding& f : linter.findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!expect_rule.empty()) {
    for (const Finding& f : linter.findings) {
      if (f.rule == expect_rule) return 0;
    }
    std::fprintf(stderr, "ftlint: expected a '%s' finding, got none\n",
                 expect_rule.c_str());
    return 1;
  }

  if (!linter.findings.empty()) {
    std::fprintf(stderr, "ftlint: %zu finding(s)\n", linter.findings.size());
    return 1;
  }
  return 0;
}
